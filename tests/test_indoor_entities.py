"""Tests for doors, partitions and floors."""

import pytest

from repro.exceptions import InvalidGeometryError
from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor.entities import (
    Door,
    DoorType,
    Floor,
    OUTDOOR_PARTITION_ID,
    Partition,
    PartitionCategory,
    PartitionType,
)


class TestDoor:
    def test_basic_attributes(self):
        door = Door("d1", IndoorPoint(1, 2, 3))
        assert door.floor == 3
        assert door.door_type is DoorType.PUBLIC
        assert not door.is_private
        assert str(door) == "d1"

    def test_private_door(self):
        door = Door("d7", IndoorPoint(0, 0, 0), DoorType.PRIVATE)
        assert door.is_private
        assert door.door_type.value == "PRD"

    def test_requires_identifier_and_position(self):
        with pytest.raises(InvalidGeometryError):
            Door("", IndoorPoint(0, 0, 0))
        with pytest.raises(InvalidGeometryError):
            Door("d1", position=(1, 2))  # type: ignore[arg-type]


class TestPartition:
    def test_public_room(self):
        room = Partition("v1", Rectangle(0, 0, 5, 5))
        assert not room.is_private
        assert room.partition_type.value == "PBP"
        assert room.area == 25.0

    def test_private_room(self):
        room = Partition("v15", Rectangle(0, 0, 4, 6), partition_type=PartitionType.PRIVATE)
        assert room.is_private
        assert room.partition_type.value == "PRP"

    def test_contains_point_checks_floor(self):
        room = Partition("v1", Rectangle(0, 0, 5, 5), floor=2)
        assert room.contains_point(IndoorPoint(1, 1, 2))
        assert not room.contains_point(IndoorPoint(1, 1, 0))
        assert not room.contains_point(IndoorPoint(9, 9, 2))

    def test_abstract_partition_contains_nothing(self):
        abstract = Partition("void")
        assert abstract.area == 0.0
        assert not abstract.contains_point(IndoorPoint(0, 0, 0))

    def test_outdoor_detection(self):
        outdoors = Partition(OUTDOOR_PARTITION_ID, category=PartitionCategory.OUTDOOR)
        assert outdoors.is_outdoor
        assert Partition("vx", category=PartitionCategory.OUTDOOR).is_outdoor
        assert not Partition("v1", Rectangle(0, 0, 1, 1)).is_outdoor

    def test_staircase_spans_floors(self):
        stairs = Partition(
            "s1",
            Rectangle(0, 0, 3, 6),
            floor=0,
            category=PartitionCategory.STAIRCASE,
            spans_floors=(0, 1),
            distance_overrides={frozenset(("low", "up")): 20.0},
        )
        assert stairs.is_staircase
        assert stairs.contains_point(IndoorPoint(1, 1, 0))
        assert stairs.contains_point(IndoorPoint(1, 1, 1))
        assert not stairs.contains_point(IndoorPoint(1, 1, 2))
        assert stairs.override_distance("low", "up") == 20.0
        assert stairs.override_distance("up", "low") == 20.0
        assert stairs.override_distance("low", "other") is None

    def test_spans_floors_must_be_ordered(self):
        with pytest.raises(InvalidGeometryError):
            Partition("s1", spans_floors=(2, 1))

    def test_requires_identifier(self):
        with pytest.raises(InvalidGeometryError):
            Partition("")


class TestFloor:
    def test_display_name(self):
        assert Floor(2).display_name == "floor 2"
        assert Floor(0, name="Ground").display_name == "Ground"
