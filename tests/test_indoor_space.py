"""Tests for the IndoorSpace container: registration, lookup, point location,
validation and the running example's stated topology facts."""

import pytest

from repro.exceptions import DuplicateEntityError, TopologyError, UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor.entities import Door, Partition, PartitionType
from repro.indoor.space import IndoorSpace


@pytest.fixture()
def small_space():
    space = IndoorSpace("small")
    space.add_partition(Partition("a", Rectangle(0, 0, 10, 10)))
    space.add_partition(Partition("b", Rectangle(10, 0, 20, 10)))
    space.add_door(Door("d1", IndoorPoint(10, 5, 0)))
    space.connect("d1", "a", "b")
    return space


class TestRegistration:
    def test_duplicate_partition_rejected(self, small_space):
        with pytest.raises(DuplicateEntityError):
            small_space.add_partition(Partition("a", Rectangle(0, 0, 1, 1)))

    def test_duplicate_door_rejected(self, small_space):
        with pytest.raises(DuplicateEntityError):
            small_space.add_door(Door("d1", IndoorPoint(0, 0, 0)))

    def test_connect_unknown_entities_rejected(self, small_space):
        with pytest.raises(UnknownEntityError):
            small_space.connect("dX", "a", "b")
        with pytest.raises(UnknownEntityError):
            small_space.connect("d1", "a", "zzz")

    def test_self_connection_rejected(self, small_space):
        with pytest.raises(TopologyError):
            small_space.connect("d1", "a", "a")


class TestLookups:
    def test_partition_and_door_access(self, small_space):
        assert small_space.partition("a").partition_id == "a"
        assert small_space.door("d1").door_id == "d1"
        assert small_space.has_partition("a") and not small_space.has_partition("z")
        assert small_space.has_door("d1") and not small_space.has_door("dz")
        with pytest.raises(UnknownEntityError):
            small_space.partition("zzz")

    def test_collection_views(self, small_space):
        assert small_space.partition_ids() == ["a", "b"]
        assert small_space.door_ids() == ["d1"]
        assert len(small_space) == 2
        assert small_space.count_doors() == 1
        assert small_space.floors() == [0]

    def test_doors_of_partition(self, small_space):
        assert [d.door_id for d in small_space.doors_of_partition("a")] == ["d1"]


class TestPointLocation:
    def test_locate_inside(self, small_space):
        assert small_space.locate_id(IndoorPoint(3, 3, 0)) == "a"
        assert small_space.locate_id(IndoorPoint(15, 3, 0)) == "b"

    def test_locate_outside_raises(self, small_space):
        with pytest.raises(UnknownEntityError):
            small_space.locate(IndoorPoint(100, 100, 0))

    def test_locate_wrong_floor_raises(self, small_space):
        with pytest.raises(UnknownEntityError):
            small_space.locate(IndoorPoint(3, 3, 5))

    def test_try_locate(self, small_space):
        assert small_space.try_locate(IndoorPoint(100, 100, 0)) is None
        assert small_space.try_locate(IndoorPoint(1, 1, 0)).partition_id == "a"


class TestTopologyDerivation:
    def test_bidirectional_connection_produces_two_edges(self, small_space):
        assert small_space.topology.edge_count() == 2
        assert small_space.topology.enterable_doors("a") == {"d1"}
        assert small_space.topology.leaveable_doors("a") == {"d1"}

    def test_topology_rebuilt_after_edit(self, small_space):
        before = small_space.topology.edge_count()
        small_space.add_partition(Partition("c", Rectangle(20, 0, 30, 10)))
        small_space.add_door(Door("d2", IndoorPoint(20, 5, 0)))
        small_space.connect("d2", "b", "c", bidirectional=False)
        assert small_space.topology.edge_count() == before + 1
        assert small_space.topology.enterable_doors("c") == {"d2"}
        assert small_space.topology.leaveable_doors("c") == set()


class TestValidation:
    def test_valid_space_passes(self, small_space):
        small_space.validate()

    def test_unconnected_door_fails(self, small_space):
        small_space.add_door(Door("dangling", IndoorPoint(5, 5, 0)))
        with pytest.raises(TopologyError):
            small_space.validate()

    def test_doorless_partition_fails(self, small_space):
        small_space.add_partition(Partition("isolated", Rectangle(50, 50, 60, 60)))
        with pytest.raises(TopologyError):
            small_space.validate()

    def test_floor_mismatch_fails(self):
        space = IndoorSpace()
        space.add_partition(Partition("a", Rectangle(0, 0, 10, 10), floor=0))
        space.add_partition(Partition("b", Rectangle(10, 0, 20, 10), floor=0))
        space.add_door(Door("d1", IndoorPoint(10, 5, 3)))  # wrong floor
        space.connect("d1", "a", "b")
        with pytest.raises(TopologyError):
            space.validate()

    def test_statistics(self, small_space):
        stats = small_space.statistics()
        assert stats["partitions"] == 2
        assert stats["doors"] == 1
        assert stats["directed_connections"] == 2
        assert stats["private_partitions"] == 0
        assert stats["mean_partition_degree"] == 1.0


class TestRunningExampleFacts:
    """The structural facts Section II-A states about the running example."""

    def test_sizes(self, example_space):
        assert len(example_space) == 17
        assert example_space.count_doors() == 21

    def test_private_partitions(self, example_space):
        assert example_space.partition("v1").is_private
        assert example_space.partition("v15").is_private
        assert example_space.count_partitions(PartitionType.PRIVATE) == 2

    def test_v3_door_sets(self, example_space):
        topology = example_space.topology
        assert topology.doors_of("v3") == {"d1", "d2", "d3", "d5", "d6"}
        assert topology.leaveable_doors("v3") == {"d1", "d2", "d3", "d5", "d6"}
        assert topology.enterable_doors("v3") == {"d1", "d2", "d5", "d6"}

    def test_d3_directionality(self, example_space):
        topology = example_space.topology
        assert topology.partitions_of("d3") == {"v3", "v16"}
        assert topology.leaveable_partitions("d3") == {"v3"}
        assert topology.enterable_partitions("d3") == {"v16"}

    def test_v1_has_single_door(self, example_space):
        assert example_space.topology.doors_of("v1") == {"d1"}

    def test_d7_is_private_door(self, example_space):
        assert example_space.door("d7").is_private

    def test_example_validates(self, example_space):
        example_space.validate()
