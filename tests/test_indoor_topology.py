"""Tests for the six door/partition topology mappings."""

import pytest

from repro.exceptions import UnknownEntityError
from repro.indoor.topology import Topology


@pytest.fixture()
def topology():
    """Three partitions in a row: a -d1- b -d2- c, plus a one-way door d3 a->c."""
    topo = Topology()
    topo.add_directed_connection("a", "b", "d1")
    topo.add_directed_connection("b", "a", "d1")
    topo.add_directed_connection("b", "c", "d2")
    topo.add_directed_connection("c", "b", "d2")
    topo.add_directed_connection("a", "c", "d3")  # one-way
    return topo


def test_p2d(topology):
    assert topology.doors_of("a") == {"d1", "d3"}
    assert topology.doors_of("b") == {"d1", "d2"}
    assert topology.doors_of("c") == {"d2", "d3"}


def test_d2p(topology):
    assert topology.partitions_of("d1") == {"a", "b"}
    assert topology.partitions_of("d3") == {"a", "c"}


def test_enterable_and_leaveable_doors(topology):
    assert topology.enterable_doors("a") == {"d1"}          # d3 cannot enter a
    assert topology.leaveable_doors("a") == {"d1", "d3"}
    assert topology.enterable_doors("c") == {"d2", "d3"}
    assert topology.leaveable_doors("c") == {"d2"}


def test_enterable_and_leaveable_partitions(topology):
    assert topology.enterable_partitions("d3") == {"c"}
    assert topology.leaveable_partitions("d3") == {"a"}
    assert topology.enterable_partitions("d1") == {"a", "b"}


def test_unknown_entities_raise(topology):
    with pytest.raises(UnknownEntityError):
        topology.doors_of("zzz")
    with pytest.raises(UnknownEntityError):
        topology.partitions_of("dzzz")


def test_degree_and_counts(topology):
    assert topology.degree("b") == 2
    assert topology.edge_count() == 5
    assert topology.partition_ids == {"a", "b", "c"}
    assert topology.door_ids == {"d1", "d2", "d3"}


def test_registration_of_isolated_entities():
    topo = Topology()
    topo.register_partition("solo")
    topo.register_door("unused")
    assert topo.doors_of("solo") == frozenset()
    assert topo.partitions_of("unused") == frozenset()


def test_without_doors_reduction(topology):
    reduced = topology.without_doors({"d2"})
    # The removed door disappears from every mapping but partitions remain.
    assert not reduced.has_door("d2")
    assert reduced.has_partition("c")
    assert reduced.doors_of("b") == {"d1"}
    assert reduced.enterable_doors("c") == {"d3"}
    assert reduced.edge_count() == 3
    # The original topology is untouched.
    assert topology.has_door("d2")
    assert topology.edge_count() == 5


def test_copy_is_independent(topology):
    clone = topology.copy()
    clone.add_directed_connection("c", "d", "d4")
    assert not topology.has_partition("d")
    assert clone.has_partition("d")


def test_directed_edges_view(topology):
    assert ("a", "c", "d3") in topology.directed_edges
    assert ("c", "a", "d3") not in topology.directed_edges
