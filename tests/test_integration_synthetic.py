"""End-to-end integration tests on the miniature synthetic mall.

These tests exercise the full pipeline the benchmarks use — venue generation,
schedule generation, IT-Graph construction, workload generation, query
processing with both methods — and check the cross-cutting invariants on a
venue none of the unit tests were written against.
"""

import math

import pytest

from repro.core.engine import CheckMethod, ITSPQEngine
from repro.core.reference import selection_dijkstra_reference
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances


@pytest.fixture(scope="module")
def engine(tiny_mall_itgraph):
    return ITSPQEngine(tiny_mall_itgraph)


@pytest.fixture(scope="module")
def workload(tiny_mall_itgraph):
    return [
        generated.query
        for generated in generate_query_instances(
            tiny_mall_itgraph, QueryWorkloadConfig(s2t_distance=150, pairs=6, seed=13)
        )
    ]


def test_methods_agree_on_synthetic_workload(engine, workload):
    for query in workload:
        for query_time in ("6:00", "9:30", "12:00", "18:00", "22:30"):
            timed = query.at_time(query_time)
            syn = engine.run(timed, method=CheckMethod.SYNCHRONOUS)
            asyn = engine.run(timed, method=CheckMethod.ASYNCHRONOUS)
            assert syn.found == asyn.found, (query.label, query_time)
            if syn.found:
                assert math.isclose(syn.length, asyn.length, abs_tol=1e-9)
                assert syn.path.door_sequence == asyn.path.door_sequence


def test_paths_validate_on_synthetic_workload(engine, tiny_mall_itgraph, workload):
    validated = 0
    for query in workload:
        result = engine.run(query)
        if result.found:
            assert result.path.validate(tiny_mall_itgraph) == []
            validated += 1
    assert validated > 0


def test_engine_matches_reference_on_synthetic_workload(engine, tiny_mall_itgraph, workload):
    for query in workload[:3]:
        for query_time in ("9:30", "12:00", "21:00"):
            timed = query.at_time(query_time)
            result = engine.run(timed)
            reference = selection_dijkstra_reference(
                tiny_mall_itgraph, timed.source, timed.target, timed.query_time
            )
            assert result.found == reference.found
            if result.found:
                assert math.isclose(result.length, reference.length, abs_tol=1e-9)


def test_reachability_degrades_outside_opening_hours(engine, workload):
    found_by_time = {}
    for query_time in ("3:00", "12:00", "23:50"):
        found_by_time[query_time] = sum(
            1 for query in workload if engine.run(query.at_time(query_time)).found
        )
    assert found_by_time["12:00"] >= found_by_time["3:00"]
    assert found_by_time["12:00"] >= found_by_time["23:50"]
    assert found_by_time["12:00"] > 0


def test_cross_floor_routes_use_staircases(engine, tiny_mall_venue, tiny_mall_itgraph):
    # Pick one shop per floor and verify the route between them crosses a staircase door.
    shops_by_floor = {}
    for floor, layout in tiny_mall_venue.floor_layouts.items():
        for shop in layout.shops:
            partition = tiny_mall_venue.space.partition(shop)
            if partition.polygon is not None and not partition.is_private:
                shops_by_floor.setdefault(floor, partition)
                break
    assert set(shops_by_floor) == {0, 1}
    source_polygon = shops_by_floor[0].polygon
    target_polygon = shops_by_floor[1].polygon
    from repro.geometry.point import IndoorPoint

    source = IndoorPoint(source_polygon.centroid.x, source_polygon.centroid.y, 0)
    target = IndoorPoint(target_polygon.centroid.x, target_polygon.centroid.y, 1)
    result = engine.query(source, target, "12:00")
    assert result.found
    assert any("stair" in door_id for door_id in result.path.door_sequence)
    assert result.path.is_valid(tiny_mall_itgraph)


def test_snapshot_cache_is_shared_across_queries(tiny_mall_itgraph, workload):
    # The GraphUpdater cache backs the reference engine's ITG/A path; the
    # compiled default never touches it (its bitsets are precomputed), so
    # this guard must run with compiled=False to stay meaningful.
    reference = ITSPQEngine(tiny_mall_itgraph, compiled=False)
    before = reference.updater.updates_performed
    for query in workload:
        reference.run(query, method=CheckMethod.ASYNCHRONOUS)
    after = reference.updater.updates_performed
    # All 12:00 queries fall in the same checkpoint interval, so at most a
    # couple of snapshot constructions are needed for the whole workload.
    assert 1 <= after - before <= 3


def test_statistics_reflect_method_differences(engine, workload):
    syn = engine.run(workload[0], method=CheckMethod.SYNCHRONOUS)
    asyn = engine.run(workload[0], method=CheckMethod.ASYNCHRONOUS)
    assert syn.statistics.ati_probes > 0
    assert asyn.statistics.membership_checks > 0
    # ITG/A replaces per-door ATI probes by membership tests.
    assert asyn.statistics.ati_probes <= syn.statistics.ati_probes
