"""Compiled-graph codec round-trips: the serialised-index contract.

A :class:`~repro.core.compiled.CompiledITGraph` rebuilt from its
:mod:`repro.io.compiled_codec` payload must be indistinguishable from a
freshly compiled one at query time: bit-identical paths, lengths and every
:class:`~repro.core.query.SearchStatistics` counter, for all four TV-check
methods on every venue — including hypothesis-generated door schedules.
This is what lets worker processes (and future venue shards) serve queries
from bytes instead of recompiling, so the contract is load-bearing for
``repro.core.parallel``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_compiled_parity import METHODS, assert_parity

from repro.core.batch import BatchExecutor
from repro.core.engine import ITSPQEngine
from repro.core.query import ITSPQuery
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue
from repro.exceptions import SerializationError, UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.io import (
    compiled_graph_from_bytes,
    compiled_graph_to_bytes,
    load_compiled_graph,
    save_compiled_graph,
)


def roundtrip(compiled_graph):
    """Serialise and rehydrate one compiled graph."""
    return compiled_graph_from_bytes(compiled_graph_to_bytes(compiled_graph))


def assert_query_roundtrip(itgraph, queries, methods=METHODS):
    """Rehydrated-graph batch answers must equal fresh-graph and sequential
    answers, statistics included."""
    compiled_graph = itgraph.compiled()
    rehydrated = roundtrip(compiled_graph)
    assert rehydrated.itgraph is None  # codec payloads carry no IT-Graph
    for method in methods:
        oracle = ITSPQEngine(itgraph)
        expected = [oracle.run(query, method=method) for query in queries]
        fresh = BatchExecutor(compiled_graph).run_batch(queries, method)
        rehy = BatchExecutor(rehydrated).run_batch(queries, method)
        for reference_result, fresh_result, rehydrated_result in zip(expected, fresh, rehy):
            assert_parity(reference_result, fresh_result)
            assert_parity(reference_result, rehydrated_result)


def all_pairs_queries(points, times):
    names = sorted(points)
    return [
        ITSPQuery(points[a], points[b], t)
        for a in names
        for b in names
        if a != b
        for t in times
    ]


class TestStructuralRoundTrip:
    """The flat arrays themselves must survive the codec bit for bit."""

    def test_example_graph_arrays(self, example_itgraph):
        compiled_graph = example_itgraph.compiled()
        rehydrated = roundtrip(compiled_graph)
        assert rehydrated.door_ids == compiled_graph.door_ids
        assert rehydrated.door_index == compiled_graph.door_index
        assert rehydrated.partition_ids == compiled_graph.partition_ids
        assert rehydrated.partition_private == compiled_graph.partition_private
        assert rehydrated.partition_outdoor == compiled_graph.partition_outdoor
        assert rehydrated.adjacency == compiled_graph.adjacency
        assert rehydrated.ati_bounds == compiled_graph.ati_bounds
        assert rehydrated.dm_sizes == compiled_graph.dm_sizes
        assert rehydrated.dm_locals == compiled_graph.dm_locals
        for fresh_dense, rehydrated_dense in zip(
            compiled_graph.dm_arrays, rehydrated.dm_arrays
        ):
            # NaN-aware: compare the raw IEEE bytes, not float equality.
            assert fresh_dense.tobytes() == rehydrated_dense.tobytes()
        assert list(rehydrated.door_x) == list(compiled_graph.door_x)
        assert list(rehydrated.door_y) == list(compiled_graph.door_y)
        assert rehydrated.door_floor == compiled_graph.door_floor
        assert [tuple(doors) for doors in rehydrated.leaveable_by_partition] == [
            tuple(doors) for doors in compiled_graph.leaveable_by_partition
        ]
        bitsets, rehydrated_bitsets = (
            compiled_graph.interval_bitsets,
            rehydrated.interval_bitsets,
        )
        assert rehydrated_bitsets.starts == bitsets.starts
        for index in range(bitsets.interval_count):
            assert rehydrated_bitsets.bitset_by_index(index) == bitsets.bitset_by_index(index)

    def test_payload_is_stable(self, example_itgraph):
        """Serialising a rehydrated graph reproduces the payload byte for byte."""
        payload = compiled_graph_to_bytes(example_itgraph.compiled())
        assert compiled_graph_to_bytes(compiled_graph_from_bytes(payload)) == payload

    def test_locate_parity_over_dense_probe_grid(self, example_itgraph):
        compiled_graph = example_itgraph.compiled()
        rehydrated = roundtrip(compiled_graph)
        boxes = [
            partition.polygon.bounding_box
            for partition in example_itgraph.space.iter_partitions()
            if partition.polygon is not None
        ]
        min_x = min(box.min_x for box in boxes) - 1.0
        max_x = max(box.max_x for box in boxes) + 1.0
        min_y = min(box.min_y for box in boxes) - 1.0
        max_y = max(box.max_y for box in boxes) + 1.0
        steps = 40
        for ix in range(steps + 1):
            for iy in range(steps + 1):
                point = IndoorPoint(
                    min_x + (max_x - min_x) * ix / steps,
                    min_y + (max_y - min_y) * iy / steps,
                    0,
                )
                try:
                    expected = compiled_graph.locate_index(point)
                except UnknownEntityError:
                    with pytest.raises(UnknownEntityError):
                        rehydrated.locate_index(point)
                    continue
                assert rehydrated.locate_index(point) == expected

    def test_intra_distance_matches(self, example_itgraph):
        compiled_graph = example_itgraph.compiled()
        rehydrated = roundtrip(compiled_graph)
        for pidx, local in enumerate(compiled_graph.dm_locals):
            doors = list(local)
            for door_a in doors:
                for door_b in doors:
                    try:
                        expected = compiled_graph.intra_distance_idx(pidx, door_a, door_b)
                    except UnknownEntityError:
                        with pytest.raises(UnknownEntityError):
                            rehydrated.intra_distance_idx(pidx, door_a, door_b)
                        continue
                    assert rehydrated.intra_distance_idx(pidx, door_a, door_b) == expected


class TestQueryRoundTrip:
    """End-to-end: rehydrated graphs answer queries bit-identically."""

    def test_example_venue_all_methods(self, example_itgraph, example_points):
        times = ["6:30", "9:00", "12:00", "15:55", "21:00", "23:30"]
        queries = all_pairs_queries(example_points, times)
        queries += [
            ITSPQuery(example_points[name], example_points[name], "12:00")
            for name in sorted(example_points)
        ]
        assert_query_roundtrip(example_itgraph, queries)

    def test_tiny_mall_all_methods(self, tiny_mall_itgraph):
        space = tiny_mall_itgraph.space
        points = []
        for partition in space.iter_partitions():
            record = tiny_mall_itgraph.partition_record(partition.partition_id)
            if record.is_private or record.is_outdoor or partition.polygon is None:
                continue
            center = partition.polygon.bounding_box.center
            candidate = IndoorPoint(center.x, center.y, partition.floor)
            if partition.contains_point(candidate):
                points.append(candidate)
            if len(points) >= 8:
                break
        queries = [
            ITSPQuery(source, target, query_time)
            for source in points[:4]
            for target in points
            if source is not target
            for query_time in ("6:30", "12:00", "21:45")
        ]
        assert_query_roundtrip(tiny_mall_itgraph, queries)

    def test_private_rooms_and_shortcuts(self):
        itgraph, points = build_corridor_venue(
            {"s12": [("9:00", "11:00"), ("20:00", "22:00")]},
            private_rooms=("room2",),
        )
        queries = all_pairs_queries(points, ["8:59", "9:00", "10:30", "21:59", "22:00"])
        assert_query_roundtrip(itgraph, queries)

    def test_file_helpers_roundtrip(self, example_itgraph, example_points, tmp_path):
        target = tmp_path / "nested" / "example.cig"
        saved = save_compiled_graph(example_itgraph.compiled(), target)
        assert saved == target and target.is_file()
        rehydrated = load_compiled_graph(target)
        queries = all_pairs_queries(example_points, ["9:00"])
        expected = ITSPQEngine(example_itgraph).run_batch(queries, method="synchronous")
        actual = BatchExecutor(rehydrated).run_batch(queries, "synchronous")
        for reference_result, rehydrated_result in zip(expected, actual):
            assert_parity(reference_result, rehydrated_result)


class TestFormatValidation:
    """Foreign, corrupt and future payloads must fail fast and loudly."""

    def test_rejects_foreign_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            compiled_graph_from_bytes(b"NOTCIG\x01\x00" + b"\x00" * 64)

    def test_rejects_future_version(self, example_itgraph):
        payload = bytearray(compiled_graph_to_bytes(example_itgraph.compiled()))
        payload[6] = 0xFF  # bump the little-endian version field
        with pytest.raises(SerializationError, match="version"):
            compiled_graph_from_bytes(bytes(payload))

    def test_rejects_truncation(self, example_itgraph):
        payload = compiled_graph_to_bytes(example_itgraph.compiled())
        with pytest.raises(SerializationError):
            compiled_graph_from_bytes(payload[: len(payload) // 2])

    def test_rejects_short_header(self):
        with pytest.raises(SerializationError):
            compiled_graph_from_bytes(b"RP")

    def test_rejects_trailing_garbage(self, example_itgraph):
        payload = compiled_graph_to_bytes(example_itgraph.compiled())
        with pytest.raises(SerializationError, match="trailing"):
            compiled_graph_from_bytes(payload + b"\x00")


class TestHypothesisRoundTrip:
    """Random schedules: the codec must be exact for arbitrary ATI layouts."""

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=22),
        st.integers(min_value=1, max_value=12),
        st.sampled_from(METHODS),
    )
    def test_two_room_schedules(self, open_hour, duration, method):
        close_hour = min(24, open_hour + duration)
        itgraph, points = build_two_room_venue({"d1": [(f"{open_hour}:00", f"{close_hour}:00")]})
        queries = all_pairs_queries(
            points, [f"{open_hour}:00", "0:30", "12:00", f"{max(close_hour - 1, 0)}:59"]
        )
        assert_query_roundtrip(itgraph, queries, methods=(method,))

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=23),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=0,
            max_size=3,
        ),
        st.sampled_from(METHODS),
    )
    def test_corridor_shortcut_windows(self, windows, method):
        schedule = {
            "s12": [
                (f"{open_hour}:00", f"{min(24, open_hour + duration)}:00")
                for open_hour, duration in windows
            ]
        }
        itgraph, points = build_corridor_venue(schedule)
        queries = all_pairs_queries(points, ["7:00", "12:00", "22:30"])
        assert_query_roundtrip(itgraph, queries, methods=(method,))
