"""Tests for JSON serialisation of venues, schedules and workloads."""

import pytest

from repro.core.engine import ITSPQEngine
from repro.core.itgraph import build_itgraph
from repro.core.query import ITSPQuery
from repro.datasets.example_floorplan import (
    build_example_schedule,
    example_query_points,
)
from repro.exceptions import SerializationError
from repro.geometry.point import IndoorPoint
from repro.io.serialize import (
    load_json,
    queries_from_dict,
    queries_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    space_from_dict,
    space_to_dict,
)


class TestSpaceRoundTrip:
    def test_round_trip_preserves_structure(self, example_space):
        document = space_to_dict(example_space)
        restored = space_from_dict(document)
        assert restored.partition_ids() == example_space.partition_ids()
        assert restored.door_ids() == example_space.door_ids()
        assert restored.topology.directed_edges == example_space.topology.directed_edges
        for partition_id in example_space.partition_ids():
            original = example_space.partition(partition_id)
            copy = restored.partition(partition_id)
            assert copy.partition_type == original.partition_type
            assert copy.floor == original.floor
            assert copy.area == pytest.approx(original.area)
        restored.validate()

    def test_round_trip_preserves_query_answers(self, example_space):
        schedule = build_example_schedule()
        restored_space = space_from_dict(space_to_dict(example_space))
        restored_schedule = schedule_from_dict(schedule_to_dict(schedule))
        points = example_query_points()

        original_engine = ITSPQEngine(build_itgraph(example_space, schedule))
        restored_engine = ITSPQEngine(build_itgraph(restored_space, restored_schedule))
        for time in ("9:00", "23:30"):
            original = original_engine.query(points["p3"], points["p4"], time)
            restored = restored_engine.query(points["p3"], points["p4"], time)
            assert original.found == restored.found
            if original.found:
                assert original.length == pytest.approx(restored.length)
                assert original.path.door_sequence == restored.path.door_sequence

    def test_round_trip_of_multifloor_venue(self, tiny_mall_venue):
        document = space_to_dict(tiny_mall_venue.space)
        restored = space_from_dict(document)
        assert restored.count_doors() == tiny_mall_venue.space.count_doors()
        # Staircase overrides survive the round trip.
        staircase_id = tiny_mall_venue.staircases[0]
        doors = sorted(restored.topology.doors_of(staircase_id))
        assert restored.partition(staircase_id).override_distance(doors[0], doors[1]) == 20.0

    def test_malformed_document_rejected(self):
        with pytest.raises(SerializationError):
            space_from_dict({"partitions": [{"id": "a"}]})  # missing doors/connections


class TestScheduleRoundTrip:
    def test_round_trip(self):
        schedule = build_example_schedule()
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.scheduled_doors() == schedule.scheduled_doors()
        for door_id in schedule.scheduled_doors():
            assert restored[door_id] == schedule[door_id]

    def test_malformed_schedule_rejected(self):
        with pytest.raises(SerializationError):
            schedule_from_dict({"doors": {"d1": [["25:99"]]}})


class TestQueryWorkloadRoundTrip:
    def test_round_trip(self):
        queries = [
            ITSPQuery(IndoorPoint(1, 2, 0), IndoorPoint(3, 4, 1), "9:30", label="a"),
            ITSPQuery(IndoorPoint(5, 6, 2), IndoorPoint(7, 8, 2), "22:00", label="b"),
        ]
        restored = queries_from_dict(queries_to_dict(queries))
        assert restored == queries

    def test_malformed_workload_rejected(self):
        with pytest.raises(SerializationError):
            queries_from_dict({"queries": [{"source": [0, 0]}]})


class TestFiles:
    def test_save_and_load(self, tmp_path, example_space):
        path = save_json(space_to_dict(example_space), tmp_path / "venue.json")
        assert path.exists()
        document = load_json(path)
        assert space_from_dict(document).partition_ids() == example_space.partition_ids()

    def test_load_invalid_json(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        with pytest.raises(SerializationError):
            load_json(bad)
