"""Grid point-location vs linear scan equivalence.

``CompiledITGraph.locate_index`` answers ``P(p)`` from a per-floor uniform
grid; ``locate_index_linear`` is the pre-grid full scan with identical
first-match-in-insertion-order semantics.  The two must agree — same
partition index, or both raising ``UnknownEntityError`` — on every point:
random interior points, points exactly on partition borders (polygon
vertices, edge midpoints, shared walls), points on grid-cell boundaries and
points outside every partition.
"""

import random

import pytest

from repro.exceptions import UnknownEntityError
from repro.geometry.point import IndoorPoint


def assert_locate_equivalent(compiled, point):
    """Grid and linear location agree on ``point`` (result or rejection)."""
    try:
        expected = compiled.locate_index_linear(point)
    except UnknownEntityError:
        with pytest.raises(UnknownEntityError):
            compiled.locate_index(point)
        return
    assert compiled.locate_index(point) == expected, point


def venue_floors(itgraph):
    """All floors that have at least one located partition."""
    floors = set()
    for partition in itgraph.space.iter_partitions():
        if partition.polygon is None:
            continue
        if partition.spans_floors is not None:
            low, high = partition.spans_floors
            floors.update(range(low, high + 1))
        else:
            floors.add(partition.floor)
    return sorted(floors)


def venue_bbox(itgraph):
    """The union bounding box over all partition polygons."""
    boxes = [
        partition.polygon.bounding_box
        for partition in itgraph.space.iter_partitions()
        if partition.polygon is not None
    ]
    return (
        min(box.min_x for box in boxes),
        min(box.min_y for box in boxes),
        max(box.max_x for box in boxes),
        max(box.max_y for box in boxes),
    )


def sample_points(itgraph, seed, count=400):
    """Random points across (and slightly beyond) the venue extent."""
    rng = random.Random(seed)
    min_x, min_y, max_x, max_y = venue_bbox(itgraph)
    pad_x = 0.25 * (max_x - min_x)
    pad_y = 0.25 * (max_y - min_y)
    floors = venue_floors(itgraph)
    points = []
    for _ in range(count):
        points.append(
            IndoorPoint(
                rng.uniform(min_x - pad_x, max_x + pad_x),
                rng.uniform(min_y - pad_y, max_y + pad_y),
                rng.choice(floors),
            )
        )
    return points


def border_points(itgraph):
    """Polygon vertices and edge midpoints of every partition, on every floor
    the partition spans — the exact-boundary cases bbox prefilters get wrong
    when tolerances are mishandled."""
    points = []
    for partition in itgraph.space.iter_partitions():
        if partition.polygon is None:
            continue
        if partition.spans_floors is not None:
            low, high = partition.spans_floors
            floors = range(low, high + 1)
        else:
            floors = (partition.floor,)
        for floor in floors:
            for vertex in partition.polygon.vertices:
                points.append(IndoorPoint(vertex.x, vertex.y, floor))
            for edge in partition.polygon.edges():
                mid_x = (edge.start.x + edge.end.x) / 2.0
                mid_y = (edge.start.y + edge.end.y) / 2.0
                points.append(IndoorPoint(mid_x, mid_y, floor))
    return points


class TestExampleVenueGrid:
    def test_random_points(self, example_itgraph):
        compiled = example_itgraph.compiled()
        for point in sample_points(example_itgraph, seed=31):
            assert_locate_equivalent(compiled, point)

    def test_border_points(self, example_itgraph):
        compiled = example_itgraph.compiled()
        for point in border_points(example_itgraph):
            assert_locate_equivalent(compiled, point)

    def test_query_points_and_outside(self, example_itgraph, example_points):
        compiled = example_itgraph.compiled()
        for point in example_points.values():
            expected = example_itgraph.covering_partition(point).partition_id
            assert compiled.partition_ids[compiled.locate_index(point)] == expected
        for bad in (
            IndoorPoint(9999.0, 9999.0, 0),
            IndoorPoint(-9999.0, -9999.0, 0),
            IndoorPoint(0.0, 0.0, 42),  # floor with no partitions at all
        ):
            with pytest.raises(UnknownEntityError):
                compiled.locate_index(bad)
            with pytest.raises(UnknownEntityError):
                compiled.locate_index_linear(bad)


class TestSyntheticMallGrid:
    """Multi-floor venue with staircases (floor-spanning partitions)."""

    def test_random_points(self, tiny_mall_itgraph):
        compiled = tiny_mall_itgraph.compiled()
        for point in sample_points(tiny_mall_itgraph, seed=57, count=600):
            assert_locate_equivalent(compiled, point)

    def test_border_points(self, tiny_mall_itgraph):
        compiled = tiny_mall_itgraph.compiled()
        for point in border_points(tiny_mall_itgraph):
            assert_locate_equivalent(compiled, point)

    def test_door_positions(self, tiny_mall_itgraph):
        # Door positions sit exactly on shared partition walls — the
        # worst-case first-match tie between adjacent partitions.
        compiled = tiny_mall_itgraph.compiled()
        for door_id in tiny_mall_itgraph.door_ids():
            position = tiny_mall_itgraph.door_record(door_id).position
            assert_locate_equivalent(compiled, position)

    def test_grid_cell_boundaries(self, tiny_mall_itgraph):
        # Points laid exactly on the uniform grid's cell edges: the lookup
        # must still inspect a cell whose candidate list contains the match.
        compiled = tiny_mall_itgraph.compiled()
        for floor, grid in compiled._locate_grid.items():
            min_x, min_y, inv_w, inv_h, nx, ny, _ = grid
            if not inv_w or not inv_h:
                continue
            for cx in range(nx + 1):
                for cy in range(ny + 1):
                    point = IndoorPoint(min_x + cx / inv_w, min_y + cy / inv_h, floor)
                    assert_locate_equivalent(compiled, point)

    def test_search_parity_unaffected(self, tiny_mall_itgraph):
        # End-to-end guard: endpoint location through the grid returns the
        # same partitions, so engine answers are unchanged.
        from repro.core.engine import ITSPQEngine
        from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances

        workload = generate_query_instances(
            tiny_mall_itgraph,
            QueryWorkloadConfig(s2t_distance=150.0, pairs=3, query_time="12:00", seed=11),
        )
        engine = ITSPQEngine(tiny_mall_itgraph)
        for generated in workload:
            result = engine.run(generated.query, method="synchronous")
            source_pidx = engine.ensure_compiled().locate_index(generated.query.source)
            linear_pidx = engine.ensure_compiled().locate_index_linear(generated.query.source)
            assert source_pidx == linear_pidx
            assert result.found
