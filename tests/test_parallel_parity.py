"""Parallel-vs-sequential parity: the multiprocess execution contract.

``ITSPQEngine.run_batch(workers=N)`` fans planned batch groups out over a
pool of worker processes; every merged result — found flag, path, length
and all :class:`~repro.core.query.SearchStatistics` counters — must be
bit-identical to sequential ``engine.run`` calls for the same queries, in
the same input order, across all four TV-check methods, and identically on
every rerun regardless of how chunks get scheduled.  The sequential engine
is the oracle; ``tests/test_batch_parity.py`` anchors it in turn.
"""

import pytest

from test_compiled_parity import METHODS, assert_parity

from repro.core.engine import ITSPQEngine
from repro.core.parallel import ParallelBatchExecutor, default_worker_count
from repro.core.query import ITSPQuery
from repro.datasets.simple_venues import build_corridor_venue
from repro.exceptions import QueryError
from repro.geometry.point import IndoorPoint


@pytest.fixture(scope="module")
def parallel_engine(example_itgraph):
    """One engine whose 2-worker pool is shared by the whole module (pool
    startup is the expensive part; the contract is per-call regardless)."""
    engine = ITSPQEngine(example_itgraph)
    yield engine
    engine.close()


def example_workload(example_points, times):
    names = sorted(example_points)
    queries = [
        ITSPQuery(example_points[a], example_points[b], t)
        for a in names
        for b in names
        if a != b
        for t in times
    ]
    # Adversarial extras: duplicates and same-partition direct paths.
    queries += queries[:7]
    queries += [ITSPQuery(example_points[a], example_points[a], times[0]) for a in names]
    return queries


class TestExampleVenueParallelParity:
    def test_all_methods_bit_identical(self, parallel_engine, example_itgraph, example_points):
        queries = example_workload(example_points, ["6:30", "9:00", "12:00", "15:55", "23:30"])
        for method in METHODS:
            oracle = ITSPQEngine(example_itgraph)
            expected = [oracle.run(query, method=method) for query in queries]
            actual = parallel_engine.run_batch(queries, method=method, workers=2)
            assert len(actual) == len(expected)
            for reference_result, parallel_result in zip(expected, actual):
                assert_parity(reference_result, parallel_result)

    def test_results_keep_input_order(self, parallel_engine, example_points):
        queries = example_workload(example_points, ["12:00", "9:00"])
        results = parallel_engine.run_batch(queries, method="synchronous", workers=2)
        for query, result in zip(queries, results):
            # Results cross a process boundary, so identity is lost but the
            # (frozen, value-equal) query survives in input order.
            assert result.query == query

    def test_reruns_are_deterministic(self, parallel_engine, example_points):
        queries = example_workload(example_points, ["6:30", "21:00"])
        first = parallel_engine.run_batch(queries, method="asynchronous", workers=2)
        second = parallel_engine.run_batch(queries, method="asynchronous", workers=2)
        for result_a, result_b in zip(first, second):
            assert_parity(result_a, result_b)

    def test_empty_batch(self, parallel_engine):
        assert parallel_engine.run_batch([], method="synchronous", workers=2) == []

    def test_matches_single_process_batch(self, parallel_engine, example_points):
        queries = example_workload(example_points, ["9:00", "12:00"])
        for method in METHODS:
            batched = parallel_engine.run_batch(queries, method=method)
            parallel = parallel_engine.run_batch(queries, method=method, workers=2)
            for batch_result, parallel_result in zip(batched, parallel):
                assert_parity(batch_result, parallel_result)

    def test_outside_endpoint_raises_in_parent(self, parallel_engine, example_points):
        bad = [
            ITSPQuery(example_points["p1"], example_points["p3"], "12:00"),
            ITSPQuery(example_points["p1"], IndoorPoint(1e6, 1e6, 0), "12:00"),
        ]
        with pytest.raises(QueryError):
            parallel_engine.run_batch(bad, method="synchronous", workers=2)


class TestPrivateAndScheduleMixes:
    def test_corridor_private_rooms(self):
        itgraph, points = build_corridor_venue(
            {"s12": [("9:00", "11:00"), ("20:00", "22:00")]},
            private_rooms=("room2", "room3"),
        )
        names = sorted(points)
        queries = [
            ITSPQuery(points[a], points[b], t)
            for a in names
            for b in names
            for t in ("8:59", "9:00", "10:30", "21:59", "22:00")
        ]
        engine = ITSPQEngine(itgraph)
        try:
            for method in METHODS:
                oracle = ITSPQEngine(itgraph)
                expected = [oracle.run(query, method=method) for query in queries]
                actual = engine.run_batch(queries, method=method, workers=2)
                for reference_result, parallel_result in zip(expected, actual):
                    assert_parity(reference_result, parallel_result)
        finally:
            engine.close()


class TestExecutorMechanics:
    def test_single_worker_stays_in_process(self, example_itgraph, example_points):
        executor = ParallelBatchExecutor(example_itgraph.compiled(), workers=1)
        queries = example_workload(example_points, ["12:00"])
        oracle = ITSPQEngine(example_itgraph)
        expected = [oracle.run(query, method="synchronous") for query in queries]
        actual = executor.run_batch(queries, "synchronous")
        for reference_result, parallel_result in zip(expected, actual):
            assert_parity(reference_result, parallel_result)
        assert executor._pool is None  # never paid for a pool

    def test_single_group_plan_stays_in_process(self, example_itgraph, example_points):
        executor = ParallelBatchExecutor(example_itgraph.compiled(), workers=2)
        queries = [
            ITSPQuery(example_points["p1"], example_points["p3"], "12:00"),
            ITSPQuery(example_points["p1"], example_points["p4"], "12:00"),
        ]
        plan = executor.planner.plan(queries, "static")
        results = executor.run_batch(queries, "static")
        if len(plan) <= 1:
            assert executor._pool is None
        assert all(result is not None for result in results)
        executor.close()

    def test_chunking_is_balanced_and_deterministic(self, example_itgraph, example_points):
        executor = ParallelBatchExecutor(example_itgraph.compiled(), workers=2)
        queries = example_workload(example_points, ["6:30", "9:00", "12:00", "15:55"])
        groups = executor.planner.plan(queries, "synchronous")
        chunks = executor._chunk(groups)
        assert sum(len(chunk) for chunk in chunks) == len(groups)
        flattened = {id(group) for chunk in chunks for group in chunk}
        assert len(flattened) == len(groups)  # every group exactly once
        weights = [sum(group.size + 1 for group in chunk) for chunk in chunks]
        assert weights == sorted(weights, reverse=True)  # heaviest first
        again = executor._chunk(groups)
        assert [[id(group) for group in chunk] for chunk in chunks] == [
            [id(group) for group in chunk] for chunk in again
        ]

    def test_close_is_idempotent_and_pool_restarts(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        queries = example_workload(example_points, ["9:00", "12:00"])
        first = engine.run_batch(queries, method="synchronous", workers=2)
        engine.close()
        engine.close()
        second = engine.run_batch(queries, method="synchronous", workers=2)
        for result_a, result_b in zip(first, second):
            assert_parity(result_a, result_b)
        engine.close()

    def test_executor_cached_per_worker_count(self, example_itgraph):
        engine = ITSPQEngine(example_itgraph)
        try:
            assert engine.parallel_executor(2) is engine.parallel_executor(2)
            assert engine.parallel_executor(2) is not engine.parallel_executor(3)
            # All executors share one serialised payload.
            assert (
                engine.parallel_executor(2).payload_bytes()
                is engine.parallel_executor(3).payload_bytes()
            )
        finally:
            engine.close()

    def test_worker_count_validation(self, example_itgraph, example_points):
        with pytest.raises(ValueError):
            ParallelBatchExecutor(example_itgraph.compiled(), workers=0)
        with pytest.raises(ValueError):
            ITSPQEngine(example_itgraph).parallel_executor(0)
        queries = [ITSPQuery(example_points["p1"], example_points["p3"], "12:00")]
        for bad in (0, -2):
            with pytest.raises(ValueError):
                ITSPQEngine(example_itgraph).run_batch(queries, method="synchronous", workers=bad)
        assert default_worker_count() >= 1

    def test_workers_one_runs_in_process(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        queries = [ITSPQuery(example_points["p1"], example_points["p3"], "12:00")]
        results = engine.run_batch(queries, method="synchronous", workers=1)
        assert results[0].found
        assert not engine._parallel_executors  # never built a pool

    def test_requires_compiled_engine(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph, compiled=False)
        queries = [ITSPQuery(example_points["p1"], example_points["p3"], "12:00")]
        with pytest.raises(QueryError):
            engine.run_batch(queries, method="synchronous", workers=2)

    def test_workers_require_batch_mode(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        queries = [ITSPQuery(example_points["p1"], example_points["p3"], "12:00")]
        with pytest.raises(QueryError):
            engine.run_batch(queries, method="synchronous", batch=False, workers=2)

    def test_context_manager_closes_pool(self, example_itgraph, example_points):
        queries = example_workload(example_points, ["9:00", "12:00", "15:55"])
        with ParallelBatchExecutor(example_itgraph.compiled(), workers=2) as executor:
            results = executor.run_batch(queries, "synchronous")
            assert all(result is not None for result in results)
        assert executor._pool is None
