"""Property-based tests of the ITSPQ engine's core invariants.

The invariants checked on randomly drawn queries (endpoints, query times,
door schedules):

* ITG/S and ITG/A return identical answers (reachability, length, doors);
* every returned path re-validates against both ITSPQ rules;
* the engine agrees with the independent selection-based reference;
* the exhaustive simple-path optimum is never longer than the engine's
  answer, and is reachable whenever the engine finds a route.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import CheckMethod, ITSPQEngine
from repro.core.reference import selection_dijkstra_reference, time_expanded_exact
from repro.datasets.example_floorplan import build_example_itgraph, example_query_points
from repro.datasets.simple_venues import build_corridor_venue

# A fixed graph/points instance shared by all examples (hypothesis-friendly:
# no fixture interaction, deterministic construction).
_ITGRAPH = build_example_itgraph()
_POINTS = example_query_points()
_ENGINE = ITSPQEngine(_ITGRAPH)

point_names = st.sampled_from(sorted(_POINTS))
query_hours = st.integers(min_value=0, max_value=47).map(lambda half: f"{half // 2}:{30 * (half % 2):02d}")


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_names, point_names, query_hours)
def test_itgs_and_itga_agree_everywhere(source_name, target_name, query_time):
    source, target = _POINTS[source_name], _POINTS[target_name]
    syn = _ENGINE.query(source, target, query_time, CheckMethod.SYNCHRONOUS)
    asyn = _ENGINE.query(source, target, query_time, CheckMethod.ASYNCHRONOUS)
    assert syn.found == asyn.found
    if syn.found:
        assert math.isclose(syn.length, asyn.length, rel_tol=1e-12, abs_tol=1e-9)
        assert syn.path.door_sequence == asyn.path.door_sequence


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_names, point_names, query_hours)
def test_returned_paths_always_validate(source_name, target_name, query_time):
    source, target = _POINTS[source_name], _POINTS[target_name]
    result = _ENGINE.query(source, target, query_time)
    if result.found:
        assert result.path.validate(_ITGRAPH) == []
        # The reported length equals the sum of the hop legs plus the final leg.
        assert result.length >= result.path.hops[-1].distance_from_source - 1e-9 if result.path.hops else True


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_names, point_names, query_hours)
def test_engine_matches_selection_reference(source_name, target_name, query_time):
    source, target = _POINTS[source_name], _POINTS[target_name]
    result = _ENGINE.query(source, target, query_time)
    reference = selection_dijkstra_reference(_ITGRAPH, source, target, query_time)
    assert result.found == reference.found
    if result.found:
        assert math.isclose(result.length, reference.length, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_names, point_names, st.sampled_from(["6:30", "9:00", "12:00", "16:30", "22:30"]))
def test_exact_optimum_never_longer_than_engine(source_name, target_name, query_time):
    source, target = _POINTS[source_name], _POINTS[target_name]
    result = _ENGINE.query(source, target, query_time)
    exact = time_expanded_exact(_ITGRAPH, source, target, query_time, max_doors=12)
    if result.found:
        assert exact.found
        assert exact.length <= result.length + 1e-9


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=23),
    st.integers(min_value=1, max_value=23),
    st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
    st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
)
def test_shortcut_schedule_never_breaks_invariants(open_hour, duration, source_name, target_name):
    """Randomised shortcut schedules on the corridor venue keep the invariants."""
    close_hour = min(24, open_hour + duration)
    if close_hour <= open_hour:
        return
    itgraph, points = build_corridor_venue(
        {"s12": [(f"{open_hour}:00", f"{close_hour}:00")]}
    )
    engine = ITSPQEngine(itgraph)
    for query_time in (f"{open_hour}:00", "12:00"):
        syn = engine.query(points[source_name], points[target_name], query_time)
        asyn = engine.query(
            points[source_name], points[target_name], query_time, CheckMethod.ASYNCHRONOUS
        )
        assert syn.found == asyn.found
        if syn.found:
            assert math.isclose(syn.length, asyn.length, abs_tol=1e-9)
            assert syn.path.validate(itgraph) == []
        reference = selection_dijkstra_reference(
            itgraph, points[source_name], points[target_name], query_time
        )
        assert reference.found == syn.found
        if syn.found:
            assert math.isclose(reference.length, syn.length, abs_tol=1e-9)
