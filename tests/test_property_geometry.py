"""Property-based tests for the geometry substrate (hypothesis)."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.measures import euclidean_distance, path_length
from repro.geometry.point import Point2D
from repro.geometry.polygon import Rectangle
from repro.geometry.segment import LineSegment

coordinates = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)
points = st.builds(Point2D, coordinates, coordinates)


class TestMetricProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert math.isclose(a.distance_to(b), b.distance_to(a), abs_tol=1e-9)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points)
    def test_identity(self, a):
        assert a.distance_to(a) == 0.0

    @given(points, points)
    def test_manhattan_upper_bounds_euclidean(self, a, b):
        assert euclidean_distance(a, b) <= a.manhattan_distance_to(b) + 1e-9

    @given(st.lists(points, min_size=2, max_size=8))
    def test_path_length_at_least_straight_line(self, polyline):
        assert path_length(polyline) >= euclidean_distance(polyline[0], polyline[-1]) - 1e-6


class TestSegmentProperties:
    @given(points, points, points)
    def test_closest_point_is_no_farther_than_endpoints(self, start, end, probe):
        segment = LineSegment(start, end)
        closest = segment.distance_to_point(probe)
        assert closest <= probe.distance_to(start) + 1e-9
        assert closest <= probe.distance_to(end) + 1e-9

    @given(points, points, st.floats(min_value=0, max_value=1))
    def test_point_at_lies_on_segment(self, start, end, fraction):
        segment = LineSegment(start, end)
        interior = segment.point_at(fraction)
        assert segment.distance_to_point(interior) <= 1e-6 * max(1.0, segment.length)


class TestRectangleProperties:
    @given(
        st.floats(min_value=-500, max_value=500, allow_nan=False),
        st.floats(min_value=-500, max_value=500, allow_nan=False),
        st.floats(min_value=0.5, max_value=400),
        st.floats(min_value=0.5, max_value=400),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_sampled_interior_points_are_contained(self, x, y, width, height, fx, fy):
        rect = Rectangle(x, y, x + width, y + height)
        interior = Point2D(x + fx * width, y + fy * height)
        assert rect.contains(interior)
        assert rect.area == width * height or math.isclose(rect.area, width * height, rel_tol=1e-9)

    @given(
        st.floats(min_value=-500, max_value=500, allow_nan=False),
        st.floats(min_value=-500, max_value=500, allow_nan=False),
        st.floats(min_value=1, max_value=400),
        st.floats(min_value=1, max_value=400),
    )
    def test_centroid_is_inside(self, x, y, width, height):
        rect = Rectangle(x, y, x + width, y + height)
        assert rect.contains(rect.centroid)
