"""Property-based tests for the temporal substrate (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.constants import SECONDS_PER_DAY
from repro.temporal.atis import ATISet
from repro.temporal.checkpoints import CheckpointSet
from repro.temporal.interval import TimeInterval
from repro.temporal.timeofday import TimeOfDay

# Strategy: instants on a 5-minute grid within the day (keeps examples readable).
instants = st.integers(min_value=0, max_value=SECONDS_PER_DAY // 300 - 1).map(
    lambda index: TimeOfDay(index * 300)
)


@st.composite
def interval_lists(draw, max_size=6):
    """Lists of well-formed half-open intervals within the day."""
    count = draw(st.integers(min_value=0, max_value=max_size))
    intervals = []
    for _ in range(count):
        start = draw(st.integers(min_value=0, max_value=SECONDS_PER_DAY - 600))
        length = draw(st.integers(min_value=300, max_value=SECONDS_PER_DAY - start))
        intervals.append(TimeInterval(start, start + length))
    return intervals


class TestATISetProperties:
    @given(interval_lists())
    def test_normalised_intervals_are_sorted_and_disjoint(self, intervals):
        atis = ATISet(intervals)
        ordered = atis.intervals
        for previous, current in zip(ordered, ordered[1:]):
            assert previous.end < current.start  # strictly apart (merged otherwise)

    @given(interval_lists(), instants)
    def test_membership_matches_raw_intervals(self, intervals, instant):
        atis = ATISet(intervals)
        raw = any(interval.contains(instant) for interval in intervals)
        assert atis.contains(instant) == raw

    @given(interval_lists(), instants)
    def test_complement_is_exact_negation(self, intervals, instant):
        atis = ATISet(intervals)
        complement = atis.complement()
        if instant.seconds < SECONDS_PER_DAY:
            assert atis.contains(instant) != complement.contains(instant)

    @given(interval_lists(), interval_lists(), instants)
    def test_union_and_intersection_semantics(self, first, second, instant):
        a, b = ATISet(first), ATISet(second)
        assert a.union(b).contains(instant) == (a.contains(instant) or b.contains(instant))
        assert a.intersection(b).contains(instant) == (a.contains(instant) and b.contains(instant))

    @given(interval_lists())
    def test_total_open_seconds_preserved_by_normalisation(self, intervals):
        # Normalisation merges overlaps, so the total can only shrink or stay
        # equal, and never exceeds a day-equivalent of the raw sum.
        atis = ATISet(intervals)
        raw_total = sum(interval.duration for interval in intervals)
        assert atis.total_open_seconds() <= raw_total + 1e-9

    @given(interval_lists(), instants)
    def test_next_opening_is_open_or_none(self, intervals, instant):
        atis = ATISet(intervals)
        opening = atis.next_opening(instant)
        if opening is not None:
            assert atis.contains(opening)
            assert opening >= instant or atis.contains(instant)


class TestCheckpointProperties:
    @given(st.lists(instants, max_size=12), instants)
    def test_previous_and_next_bracket_the_instant(self, times, instant):
        checkpoints = CheckpointSet(times)
        previous = checkpoints.find_previous(instant)
        nxt = checkpoints.find_next(instant)
        if previous is not None:
            assert previous <= instant
        if nxt is not None:
            assert nxt > instant
        interval = checkpoints.interval_containing(instant)
        assert interval.contains(instant)

    @given(st.lists(instants, max_size=12), instants)
    def test_no_checkpoint_strictly_inside_containing_interval(self, times, instant):
        checkpoints = CheckpointSet(times)
        interval = checkpoints.interval_containing(instant)
        for checkpoint in checkpoints:
            assert not (interval.start < checkpoint < min(interval.end, TimeOfDay(SECONDS_PER_DAY)))

    @given(st.lists(instants, min_size=1, max_size=20))
    def test_restriction_returns_subset_of_requested_size(self, times):
        checkpoints = CheckpointSet(times)
        for size in (1, 2, 4):
            restricted = checkpoints.restricted_to(size)
            assert len(restricted) == min(size, len(checkpoints))
            assert {t.seconds for t in restricted} <= {t.seconds for t in checkpoints}
