"""Cross-tier parity and properties of the pluggable temporal semantics.

One probe kernel (:mod:`repro.core.semantics`) serves every execution tier —
reference, compiled, batch, parallel workers and the SP-tree cache — so each
semantics must produce *bit-identical* results (paths, lengths, arrival
times and every deterministic counter) no matter which tier answered it.
The no-wait default is covered by the pre-existing parity suites; this
module sweeps the three additional semantics across all five tiers and pins
down their defining properties:

* wait-tolerant answers dominate no-wait answers (waiting only helps);
* latest-departure is the inverse of earliest arrival on fixed intervals;
* time-window degenerates to no-wait as the window shrinks and only ever
  loses routes as it grows.

Also here: the ``partition_once`` study mode on the compiled path (new in
this refactor — it used to force the reference engine) and the probe-kernel
edge cases around half-open ATIs, never-reopening doors and midnight.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import WALKING_SPEED_MPS
from repro.core.cache import CacheConfig
from repro.core.engine import ITSPQEngine
from repro.core.query import ITSPQuery, SearchStatistics
from repro.core.semantics import (
    NO_WAIT,
    LatestDeparture,
    NoWait,
    TimeWindow,
    WaitTolerant,
    canonical_semantics,
    make_edge_probe,
)
from repro.core.tvcheck import make_strategy
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue
from repro.exceptions import QueryError
from repro.temporal.timeofday import TimeOfDay

SEMANTICS = (
    NO_WAIT,
    WaitTolerant(),
    LatestDeparture(),
    TimeWindow(window_seconds=600.0),
)

SEMANTICS_IDS = tuple(
    s.name if not isinstance(s, TimeWindow) else "time-window-600" for s in SEMANTICS
)


def assert_same_result(expected, actual):
    """Assert two results are bit-identical (modulo runtime_seconds)."""
    assert actual.found == expected.found
    assert actual.method_label == expected.method_label
    if expected.found:
        assert actual.length == expected.length
        exp_path, act_path = expected.path, actual.path
        assert act_path.door_sequence == exp_path.door_sequence
        assert act_path.partition_sequence == exp_path.partition_sequence
        assert act_path.total_length == exp_path.total_length
        for exp_hop, act_hop in zip(exp_path.hops, act_path.hops):
            assert act_hop.distance_from_source == exp_hop.distance_from_source
            assert act_hop.arrival_time.seconds == exp_hop.arrival_time.seconds
    else:
        assert actual.path is None and expected.path is None
        assert math.isinf(actual.length)
    for key in SearchStatistics.COUNTER_FIELDS:
        assert getattr(actual.statistics, key) == getattr(expected.statistics, key), key


def corridor_workload(semantics):
    """All ordered point pairs of the scheduled corridor venue at times that
    exercise waiting, window pruning and the pre-midnight deadline clamp."""
    itgraph, points = build_corridor_venue(
        {"s12": [("9:00", "11:00"), ("20:00", "22:00")], "c2": [("6:00", "22:00")]}
    )
    names = sorted(points)
    times = ["0:10", "5:30", "8:59", "10:30", "12:00", "21:59", "23:40"]
    queries = [
        ITSPQuery(points[a], points[b], when, semantics=semantics)
        for a in names
        for b in names
        if a != b
        for when in times
    ]
    return itgraph, queries


@pytest.mark.parametrize("semantics", SEMANTICS, ids=SEMANTICS_IDS)
class TestCrossTierParity:
    """Reference vs compiled vs batch vs parallel vs cache, per semantics."""

    def test_reference_vs_compiled(self, semantics):
        itgraph, queries = corridor_workload(semantics)
        reference = ITSPQEngine(itgraph, compiled=False)
        fast = ITSPQEngine(itgraph, compiled=True)
        found = 0
        for query in queries:
            expected = reference.run(query)
            actual = fast.run(query)
            assert_same_result(expected, actual)
            found += expected.found
        assert found  # the sweep must exercise real routes, not only misses

    def test_compiled_vs_batch(self, semantics):
        itgraph, queries = corridor_workload(semantics)
        fast = ITSPQEngine(itgraph, compiled=True)
        expected = [fast.run(query) for query in queries]
        for exp, act in zip(expected, fast.run_batch(queries)):
            assert_same_result(exp, act)

    def test_batch_vs_parallel_workers(self, semantics):
        itgraph, queries = corridor_workload(semantics)
        with ITSPQEngine(itgraph, compiled=True) as engine:
            batched = engine.run_batch(queries)
            parallel = engine.run_batch(queries, workers=2)
        for exp, act in zip(batched, parallel):
            assert_same_result(exp, act)

    def test_cache_replay_vs_fresh_search(self, semantics):
        itgraph, queries = corridor_workload(semantics)
        oracle = ITSPQEngine(itgraph, compiled=True)
        cached = ITSPQEngine(itgraph, cache=CacheConfig(mode="eager"))
        expected = [oracle.run(query) for query in queries]
        for round_index in range(2):  # round 1 records trees, round 2 replays
            for exp, query in zip(expected, queries):
                assert_same_result(exp, cached.run(query))
        stats = cached.cache_stats
        assert stats["trees_built"] > 0
        assert stats["hits"] > 0


class TestMixedSemanticsBatch:
    """One batch may mix semantics: the planner keys groups by semantics, so
    members under different semantics never share a tree."""

    def test_mixed_batch_matches_sequential(self):
        itgraph, points = build_corridor_venue(
            {"s12": [("9:00", "11:00")], "c2": [("6:00", "22:00")]}
        )
        queries = [
            ITSPQuery(points["room1"], points["room4"], "10:30", semantics=semantics)
            for semantics in SEMANTICS
        ] + [
            ITSPQuery(points["room4"], points["room1"], "8:30", semantics=semantics)
            for semantics in SEMANTICS
        ]
        engine = ITSPQEngine(itgraph)
        expected = [engine.run(query) for query in queries]
        for exp, act in zip(expected, engine.run_batch(queries)):
            assert_same_result(exp, act)

    def test_groups_split_by_semantics(self):
        itgraph, points = build_corridor_venue()
        engine = ITSPQEngine(itgraph)
        planner = engine.batch_executor().planner
        queries = [
            ITSPQuery(points["room1"], points["room4"], "12:00", semantics=semantics)
            for semantics in SEMANTICS
        ]
        groups = planner.plan(queries, "synchronous")
        assert len(groups) == len(SEMANTICS)
        assert {group.semantics for group in groups} == set(SEMANTICS)


class TestWaitTolerantProperties:
    def test_dominates_no_wait(self):
        itgraph, queries = corridor_workload(NO_WAIT)
        engine = ITSPQEngine(itgraph)
        for query in queries:
            no_wait = engine.run(query)
            tolerant = engine.run(query.with_semantics("wait-tolerant"))
            if no_wait.found:
                # Waiting is optional, so every no-wait route stays feasible
                # and the optimum can only improve.
                assert tolerant.found
                assert tolerant.length <= no_wait.length

    def test_waits_out_a_closed_door(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "9:00"), ("10:00", "11:00")]})
        engine = ITSPQEngine(itgraph)
        query = ITSPQuery(points["a"], points["b"], "9:30")
        assert not engine.run(query).found
        tolerant = engine.run(query.with_semantics("wait-tolerant"))
        assert tolerant.found
        # The walker waits at the door until the 10:00 reopening, so the
        # equivalent length is at least the full wait charged at full speed.
        wait_seconds = 10 * 3600 - 9.5 * 3600
        assert tolerant.length >= wait_seconds * WALKING_SPEED_MPS
        arrival = query.query_time.seconds + tolerant.length / WALKING_SPEED_MPS
        assert arrival >= 10 * 3600

    def test_never_reopening_door_is_pruned(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "9:00")]})
        engine = ITSPQEngine(itgraph)
        query = ITSPQuery(points["a"], points["b"], "10:00", semantics=WaitTolerant())
        assert not engine.run(query).found

    def test_no_wait_past_midnight(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "9:00")]})
        engine = ITSPQEngine(itgraph)
        query = ITSPQuery(points["a"], points["b"], "23:50", semantics=WaitTolerant())
        # The day is a hard horizon: waiting never wraps into tomorrow.
        assert not engine.run(query).found

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=22),
        st.integers(min_value=1, max_value=12),
        st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
        st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
        st.floats(min_value=0.0, max_value=86399.0, allow_nan=False),
    )
    def test_random_schedule_dominance_and_parity(
        self, open_hour, duration, source, target, query_seconds
    ):
        close_hour = min(24, open_hour + duration)
        itgraph, points = build_corridor_venue(
            {"s12": [(f"{open_hour}:00", f"{close_hour}:00")], "c2": [("6:00", "22:00")]}
        )
        reference = ITSPQEngine(itgraph, compiled=False)
        fast = ITSPQEngine(itgraph, compiled=True)
        query = ITSPQuery(
            points[source], points[target], TimeOfDay(query_seconds), semantics=WaitTolerant()
        )
        expected = reference.run(query)
        assert_same_result(expected, fast.run(query))
        no_wait = fast.run(query.with_semantics(NO_WAIT))
        if no_wait.found:
            assert expected.found
            assert expected.length <= no_wait.length


class TestLatestDepartureProperties:
    def test_inverse_of_earliest_arrival_on_fixed_intervals(self):
        itgraph, points = build_corridor_venue()  # every door always open
        engine = ITSPQEngine(itgraph)
        names = sorted(points)
        for a in names:
            for b in names:
                if a == b:
                    continue
                earliest = engine.run(ITSPQuery(points[a], points[b], "9:00"))
                latest = engine.run(
                    ITSPQuery(points[a], points[b], "18:00", semantics=LatestDeparture())
                )
                assert latest.found == earliest.found
                if earliest.found:
                    # Fixed intervals: same optimum in both directions, and
                    # the departure instant is the deadline minus travel time.
                    assert latest.length == pytest.approx(earliest.length)
                    departure = 18 * 3600 - latest.length / WALKING_SPEED_MPS
                    assert 0.0 <= departure < 18 * 3600

    def test_path_is_reoriented_source_to_target(self):
        itgraph, points = build_corridor_venue()
        engine = ITSPQEngine(itgraph)
        result = engine.run(
            ITSPQuery(points["room1"], points["room4"], "18:00", semantics=LatestDeparture())
        )
        assert result.found
        path = result.path
        assert path.source == points["room1"]
        assert path.target == points["room4"]
        distances = [hop.distance_from_source for hop in path.hops]
        assert distances == sorted(distances)
        assert all(0.0 <= d <= path.total_length for d in distances)
        arrivals = [hop.arrival_time.seconds for hop in path.hops]
        assert arrivals == sorted(arrivals)

    def test_departure_before_midnight_is_no_route(self):
        itgraph, points = build_two_room_venue()
        engine = ITSPQEngine(itgraph)
        query = ITSPQuery(
            points["a"], points["b"], TimeOfDay(1.0), semantics=LatestDeparture()
        )
        # Arriving by 00:00:01 would require leaving yesterday.
        assert not engine.run(query).found

    def test_deadline_before_doors_open(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "16:00")]})
        engine = ITSPQEngine(itgraph)
        query = ITSPQuery(points["a"], points["b"], "7:00", semantics=LatestDeparture())
        assert not engine.run(query).found
        late = engine.run(query.at_time("12:00"))
        assert late.found


class TestTimeWindowProperties:
    def test_tiny_window_matches_no_wait_on_open_doors(self):
        itgraph, points = build_corridor_venue()  # always-open doors
        engine = ITSPQEngine(itgraph)
        names = sorted(points)
        for a in names:
            for b in names:
                if a == b:
                    continue
                no_wait = engine.run(ITSPQuery(points[a], points[b], "12:00"))
                windowed = engine.run(
                    ITSPQuery(
                        points[a],
                        points[b],
                        "12:00",
                        semantics=TimeWindow(window_seconds=1.0),
                    )
                )
                assert_same_result(no_wait, windowed)

    def test_window_prunes_closing_door(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "16:00")]})
        engine = ITSPQEngine(itgraph)
        query = ITSPQuery(points["a"], points["b"], "15:59")
        assert engine.run(query).found  # no-wait squeezes through
        windowed = engine.run(query.with_semantics(TimeWindow(window_seconds=600.0)))
        assert not windowed.found  # the door shuts within the window

    def test_monotone_in_window_size(self):
        itgraph, queries = corridor_workload(NO_WAIT)
        engine = ITSPQEngine(itgraph)
        for query in queries:
            narrow = engine.run(query.with_semantics(TimeWindow(window_seconds=60.0)))
            wide = engine.run(query.with_semantics(TimeWindow(window_seconds=3600.0)))
            if wide.found:
                # Growing the window only removes feasible doors.
                assert narrow.found
                assert narrow.length <= wide.length


class TestProbeKernelEdgeCases:
    """Direct unit probes of :func:`make_edge_probe` — exact boundary
    behaviour that venue-level sweeps cannot pin to the float."""

    BOUNDS = {0: (3600.0, 7200.0), 1: (3600.0, 7200.0, 28800.0, 36000.0)}

    def test_wait_tolerant_charges_the_wait(self):
        probe, counters = make_edge_probe(WaitTolerant(), 0, self.BOUNDS, 0.0, 1.0)
        assert probe(0, 5000.0) == 5000.0  # already open: cost unchanged
        assert probe(0, 1000.0) == 3600.0  # closed: pay until the opening
        assert counters[0] == 3  # one probe open, two for the closed case

    def test_wait_tolerant_close_exactly_at_arrival(self):
        probe, _ = make_edge_probe(WaitTolerant(), 0, self.BOUNDS, 0.0, 1.0)
        # Half-open [start, end): arriving exactly at the close is closed.
        assert probe(0, 7200.0) is None  # no later interval: never reopens
        assert probe(1, 7200.0) == 28800.0  # later interval: wait for it

    def test_wait_tolerant_midnight_horizon(self):
        probe, _ = make_edge_probe(WaitTolerant(), 0, self.BOUNDS, 86000.0, 1.0)
        assert probe(1, 500.0) is None  # arrival past the last boundary

    def test_time_window_half_open_boundary(self):
        probe, _ = make_edge_probe(
            TimeWindow(window_seconds=600.0), 0, self.BOUNDS, 0.0, 1.0
        )
        assert probe(0, 6600.0) == 6600.0  # window ends exactly at the close
        assert probe(0, 6600.5) is None  # one half-second too late
        assert probe(0, 1000.0) is None  # closed on arrival

    def test_latest_departure_probes_backwards(self):
        probe, _ = make_edge_probe(LatestDeparture(), 0, self.BOUNDS, 7000.0, 1.0)
        assert probe(0, 1000.0) == 1000.0  # crossed at 6000, inside the ATI
        assert probe(0, 5000.0) is None  # crossed at 2000, before opening
        assert probe(0, 8000.0) is None  # crossing would precede midnight

    def test_non_default_semantics_reject_other_kinds(self):
        for semantics in (WaitTolerant(), LatestDeparture(), TimeWindow(window_seconds=1.0)):
            for kind in (1, 2, 3):
                with pytest.raises(QueryError):
                    make_edge_probe(semantics, kind, self.BOUNDS, 0.0, 1.0)


class TestValidationAndQueryAPI:
    def test_canonical_names(self):
        assert canonical_semantics("no-wait") is NO_WAIT
        assert canonical_semantics("no_wait") is NO_WAIT
        assert canonical_semantics(" Wait-Tolerant ") == WaitTolerant()
        assert canonical_semantics("latest_departure") == LatestDeparture()
        instance = TimeWindow(window_seconds=30.0)
        assert canonical_semantics(instance) is instance

    def test_time_window_needs_an_instance(self):
        with pytest.raises(QueryError):
            canonical_semantics("time-window")

    def test_unknown_semantics_rejected(self):
        with pytest.raises(QueryError):
            canonical_semantics("teleport")
        with pytest.raises(QueryError):
            canonical_semantics(42)

    def test_time_window_requires_positive_window(self):
        with pytest.raises(QueryError):
            TimeWindow(window_seconds=0.0)
        with pytest.raises(QueryError):
            TimeWindow(window_seconds=-60.0)

    def test_query_defaults_to_no_wait(self, example_points):
        query = ITSPQuery(example_points["p1"], example_points["p2"], "12:00")
        assert query.semantics is NO_WAIT

    def test_with_semantics_and_at_time_compose(self, example_points):
        query = ITSPQuery(example_points["p1"], example_points["p2"], "12:00")
        tolerant = query.with_semantics("wait-tolerant")
        assert tolerant.semantics == WaitTolerant()
        assert tolerant.source == query.source and tolerant.target == query.target
        assert tolerant.at_time("14:00").semantics == WaitTolerant()
        assert query.semantics is NO_WAIT  # original untouched (frozen)

    def test_non_default_semantics_require_synchronous(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        query = ITSPQuery(
            example_points["p1"], example_points["p2"], "12:00", semantics=WaitTolerant()
        )
        for method in ("asynchronous", "static", "query-time"):
            with pytest.raises(QueryError):
                engine.run(query, method=method)
            with pytest.raises(QueryError):
                engine.run_batch([query], method=method)

    def test_explicit_strategy_is_no_wait_only(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph, compiled=False)
        strategy = make_strategy(
            "synchronous", example_itgraph, engine.updater, WALKING_SPEED_MPS
        )
        query = ITSPQuery(
            example_points["p1"], example_points["p2"], "12:00", semantics=LatestDeparture()
        )
        with pytest.raises(QueryError):
            engine.run(query, strategy=strategy)

    def test_result_exposes_semantics(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        semantics = WaitTolerant()
        result = engine.run(
            ITSPQuery(example_points["p1"], example_points["p2"], "12:00", semantics=semantics)
        )
        assert result.semantics == semantics


class TestPartitionOnceCompiled:
    """The literal-Algorithm-1 study mode now runs on the compiled path too,
    bit-identically to the reference engine's partition_once search."""

    METHODS = ("synchronous", "asynchronous", "static", "query-time")

    def sweep(self, itgraph, pairs, times):
        reference = ITSPQEngine(itgraph, compiled=False, partition_once=True)
        fast = ITSPQEngine(itgraph, compiled=True, partition_once=True)
        assert fast.partition_once and fast.compiled
        for method in self.METHODS:
            for source, target in pairs:
                for when in times:
                    expected = reference.query(source, target, when, method)
                    assert_same_result(expected, fast.query(source, target, when, method))

    def test_corridor_with_shortcut(self):
        itgraph, points = build_corridor_venue(
            {"s12": [("9:00", "11:00"), ("20:00", "22:00")]}
        )
        names = sorted(points)
        pairs = [(points[a], points[b]) for a in names for b in names if a != b]
        self.sweep(itgraph, pairs, ["8:59", "10:30", "12:00", "21:30"])

    def test_private_rooms(self):
        itgraph, points = build_corridor_venue(private_rooms=("room2", "room3"))
        names = sorted(points)
        pairs = [(points[a], points[b]) for a in names for b in names if a != b]
        self.sweep(itgraph, pairs, ["12:00"])

    def test_example_venue(self, example_itgraph, example_points):
        names = sorted(example_points)
        pairs = [
            (example_points[a], example_points[b]) for a in names for b in names if a != b
        ]
        self.sweep(example_itgraph, pairs, ["9:00", "17:30", "23:30"])

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=22),
        st.integers(min_value=1, max_value=12),
        st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
        st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
        st.floats(min_value=0.0, max_value=86399.0, allow_nan=False),
        st.sampled_from(METHODS),
    )
    def test_random_schedule_parity(
        self, open_hour, duration, source, target, query_seconds, method
    ):
        close_hour = min(24, open_hour + duration)
        itgraph, points = build_corridor_venue(
            {"s12": [(f"{open_hour}:00", f"{close_hour}:00")], "c2": [("6:00", "22:00")]}
        )
        reference = ITSPQEngine(itgraph, compiled=False, partition_once=True)
        fast = ITSPQEngine(itgraph, compiled=True, partition_once=True)
        when = TimeOfDay(query_seconds)
        expected = reference.query(points[source], points[target], when, method)
        assert_same_result(expected, fast.query(points[source], points[target], when, method))

    def test_run_batch_falls_back_to_sequential(self):
        itgraph, points = build_corridor_venue()
        engine = ITSPQEngine(itgraph, partition_once=True)
        queries = [
            ITSPQuery(points["room1"], points["room4"], "12:00"),
            ITSPQuery(points["room4"], points["corridor"], "9:00"),
        ]
        expected = [engine.run(query) for query in queries]
        for exp, act in zip(expected, engine.run_batch(queries)):
            assert_same_result(exp, act)
        assert engine.last_execution_report.mode == "sequential"

    def test_incompatible_tiers_are_rejected(self):
        itgraph, _ = build_corridor_venue()
        engine = ITSPQEngine(itgraph, partition_once=True)
        with pytest.raises(QueryError):
            engine.batch_executor()
        with pytest.raises(QueryError):
            engine.parallel_executor(2)
        with pytest.raises(QueryError):
            ITSPQEngine(itgraph, partition_once=True, cache=True)
