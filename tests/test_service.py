"""The serving layer's happy paths: parity with the engine, micro-batching,
the HTTP surface (health/readiness/metrics), per-request deadlines and
admission-control shedding.

Every test drives a real :class:`ITSPQService` bound to an ephemeral
localhost port through real sockets — no mocked transports — inside a plain
``asyncio.run`` (the environment has no async test plugin).
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.core.cache import CacheConfig
from repro.core.engine import ITSPQEngine
from repro.service import ITSPQService, ServiceConfig

from tests._service_http import (
    assert_matches_oracle,
    get,
    post_query,
    query_body,
    raw_request,
)


def run_service_test(service: ITSPQService, test_coro_factory) -> None:
    """Start ``service``, run the test body, always drain-and-close."""

    async def scenario():
        await service.start()
        try:
            await test_coro_factory(service)
        finally:
            await service.aclose()

    asyncio.run(scenario())


def example_service(example_itgraph, **config_kwargs) -> ITSPQService:
    config_kwargs.setdefault("batch_window_ms", 1.0)
    engine = ITSPQEngine(example_itgraph, cache=CacheConfig(mode="eager"))
    return ITSPQService({"example": engine}, ServiceConfig(**config_kwargs))


class TestQueryParity:
    def test_every_pair_and_method_matches_the_engine(self, example_itgraph, example_points):
        oracle_engine = ITSPQEngine(example_itgraph)
        points = example_points
        cases = [
            (points["p3"], points["p4"], "9:00", "synchronous"),
            (points["p3"], points["p4"], "9:00", "asynchronous"),
            (points["p4"], points["p3"], "14:00", "synchronous"),
            (points["p1"], points["p2"], "10:30", "static"),
            (points["p2"], points["p1"], "18:00", "query-time"),
        ]
        oracles = [
            oracle_engine.query(source, target, when, method=method)
            for source, target, when, method in cases
        ]

        async def body(service):
            for (source, target, when, method), oracle in zip(cases, oracles):
                status, payload = await post_query(
                    service.host, service.port, query_body(source, target, when, method=method)
                )
                assert status == 200
                assert payload["venue"] == "example"
                assert_matches_oracle(payload, oracle)

        run_service_test(example_service(example_itgraph), body)

    def test_unreachable_target_is_a_200_not_found(self, example_itgraph, example_points):
        # 23:30 is past every closing time in Table I: nothing is reachable.
        oracle = ITSPQEngine(example_itgraph).query(
            example_points["p3"], example_points["p4"], "23:30"
        )

        async def body(service):
            status, payload = await post_query(
                service.host,
                service.port,
                query_body(example_points["p3"], example_points["p4"], "23:30"),
            )
            assert status == 200
            assert payload["found"] == oracle.found
            assert_matches_oracle(payload, oracle)

        run_service_test(example_service(example_itgraph), body)


class TestMicroBatching:
    def test_concurrent_queries_share_batches(self, example_itgraph, example_points):
        points = list(example_points.values())
        bodies = [
            query_body(source, target)
            for source in points
            for target in points
            if source is not target
        ]

        async def body(service):
            outcomes = await asyncio.gather(
                *(post_query(service.host, service.port, document) for document in bodies)
            )
            assert all(status == 200 for status, _ in outcomes)
            # 12 concurrent same-(venue, method) queries coalesced into
            # fewer flushes than requests — the whole point of the window.
            assert 1 <= service.metrics.batches < len(bodies)
            assert service.metrics.answered == len(bodies)

        run_service_test(example_service(example_itgraph, batch_window_ms=25.0), body)

    def test_max_batch_flushes_early(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]

        async def body(service):
            started = time.perf_counter()
            outcomes = await asyncio.gather(
                *(post_query(service.host, service.port, query_body(p3, p4)) for _ in range(4))
            )
            elapsed = time.perf_counter() - started
            assert all(status == 200 for status, _ in outcomes)
            # The window is absurdly long; only the size trigger can have
            # flushed within the test budget.
            assert elapsed < 5.0

        run_service_test(
            example_service(example_itgraph, batch_window_ms=30_000.0, max_batch=4), body
        )


class TestHttpSurface:
    def test_health_ready_metrics_and_errors(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]

        async def body(service):
            status, payload = await get(service.host, service.port, "/healthz")
            assert status == 200 and payload["status"] == "alive"

            status, payload = await get(service.host, service.port, "/readyz")
            assert status == 200 and payload["status"] == "ready"
            assert payload["venues"] == ["example"]
            assert "batch" in payload["ladder"]["rungs"]

            status, _ = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200

            status, payload = await get(service.host, service.port, "/metrics")
            assert status == 200
            assert payload["requests"]["answered"] == 1
            assert payload["requests"]["answered_by_rung"].get("batch") == 1
            assert payload["venues"]["example"]["cache"]["entries"] >= 1

            status, _ = await get(service.host, service.port, "/nope")
            assert status == 404
            status, _ = await raw_request(service.host, service.port, "DELETE", "/query")
            assert status == 405
            status, _ = await raw_request(service.host, service.port, "POST", "/metrics")
            assert status == 405

        run_service_test(example_service(example_itgraph), body)

    def test_keep_alive_serves_multiple_requests(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]

        async def body(service):
            reader, writer = await asyncio.open_connection(service.host, service.port)
            try:
                for _ in range(3):
                    status, _ = await raw_request(
                        service.host,
                        service.port,
                        "POST",
                        "/query",
                        json.dumps(query_body(p3, p4)).encode(),
                        reader=reader,
                        writer=writer,
                    )
                    assert status == 200
            finally:
                writer.close()
                await writer.wait_closed()

        run_service_test(example_service(example_itgraph), body)

    @pytest.mark.parametrize(
        "document",
        [
            {"source": [26, 5], "time": "9:00"},  # no target
            {"source": "here", "target": [9, 10], "time": "9:00"},
            {"source": [26, 5], "target": [9, 10], "time": "9:00", "method": "bogus"},
            {"source": [26, 5], "target": [9, 10], "time": "9:00", "venue": "atlantis"},
            {"source": [26, 5], "target": [9, 10], "time": "9:00", "deadline_ms": -5},
            [1, 2, 3],  # not an object
        ],
    )
    def test_malformed_queries_answer_400(self, example_itgraph, document):
        async def body(service):
            status, payload = await post_query(service.host, service.port, document)
            assert status == 400
            assert payload["type"]
            assert service.metrics.bad_requests >= 1

        run_service_test(example_service(example_itgraph), body)

    def test_non_json_body_answers_400(self, example_itgraph):
        async def body(service):
            status, payload = await raw_request(
                service.host, service.port, "POST", "/query", b"this is not json"
            )
            assert status == 400
            assert payload["type"] == "JSONDecodeError"

        run_service_test(example_service(example_itgraph), body)


class TestDeadlines:
    def test_tiny_deadline_answers_504(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]

        async def body(service):
            status, payload = await post_query(
                service.host,
                service.port,
                query_body(p3, p4, deadline_ms=0.0001),
            )
            assert status == 504
            assert payload["type"] == "DeadlineExceededError"
            assert service.metrics.deadline_exceeded == 1
            # The service is not poisoned: the same query unbounded answers.
            status, _ = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200

        run_service_test(example_service(example_itgraph), body)

    def test_generous_default_deadline_is_invisible(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]
        oracle = ITSPQEngine(example_itgraph).query(p3, p4, "9:00")

        async def body(service):
            status, payload = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200
            assert_matches_oracle(payload, oracle)

        run_service_test(
            example_service(example_itgraph, default_deadline_ms=60_000.0), body
        )


class TestAdmissionControl:
    def test_queue_overflow_sheds_429(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]
        stall = 0.3

        def slow_rung(rung, venue):  # holds the only batch slot on a worker thread
            time.sleep(stall)

        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(
                batch_window_ms=0.0,
                max_batch=1,
                max_pending=2,
                max_inflight_batches=1,
                rung_fault_hook=slow_rung,
            ),
        )

        async def body(service):
            outcomes = await asyncio.gather(
                *(post_query(service.host, service.port, query_body(p3, p4)) for _ in range(12))
            )
            statuses = [status for status, _ in outcomes]
            assert statuses.count(429) >= 1, statuses
            assert statuses.count(200) >= 1, statuses
            assert set(statuses) <= {200, 429}
            for status, payload in outcomes:
                if status == 429:
                    assert payload["type"] == "ServiceOverloadedError"
            assert service.metrics.shed == statuses.count(429)
            assert service.admission.shed == statuses.count(429)

        run_service_test(service, body)
