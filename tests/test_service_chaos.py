"""Chaos parity for the serving layer: every fault the service absorbs must
leave client-visible answers bit-identical to the sequential oracle.

The faults (all deterministic, no timing races):

* a worker process SIGKILLed mid-request on the parallel rung — the
  supervised retry hides it;
* every rung forced in turn (by tripping the breakers above it) — each rung
  answers bit-identically, including cache-replay;
* a flaky rung tripping its circuit breaker — the ladder descends, then
  heals through the half-open probe on an injected clock (no sleeping);
* a queue flood — every request either answers 200 bit-identically or is
  shed with a typed 429, never a hang or a corrupt answer;
* a slow client — a typed 408, and the service stays healthy for others.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.cache import CacheConfig
from repro.core.engine import ITSPQEngine
from repro.service import ITSPQService, ServiceConfig
from repro.service.degradation import (
    RUNG_BATCH,
    RUNG_CACHE_REPLAY,
    RUNG_PARALLEL,
    RUNG_SEQUENTIAL,
)
from repro.testing import FlakyRung, drip_feed_request, flood_requests, sigkill_mid_request_plan

from tests._service_http import assert_matches_oracle, get, post_query, query_body
from tests.test_deadline import FakeClock


def run_service_test(service: ITSPQService, test_coro_factory) -> None:
    async def scenario():
        await service.start()
        try:
            await test_coro_factory(service)
        finally:
            await service.aclose()

    asyncio.run(scenario())


@pytest.fixture()
def oracle(example_itgraph, example_points):
    engine = ITSPQEngine(example_itgraph)
    return engine.query(example_points["p3"], example_points["p4"], "9:00")


class TestWorkerDeathMidRequest:
    def test_sigkilled_worker_is_invisible_to_the_client(
        self, example_itgraph, example_points, oracle
    ):
        p3, p4 = example_points["p3"], example_points["p4"]
        engine = ITSPQEngine(example_itgraph)
        oracle_afternoon = ITSPQEngine(example_itgraph).query(p4, p3, "14:00")
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(
                workers=2,
                # Long window so the two concurrent queries share one
                # micro-batch — a single-group plan would stay in-process
                # and never exercise the pool.
                batch_window_ms=100.0,
                parallel_options={
                    "fault_plan": sigkill_mid_request_plan(),
                    "backoff_base": 0.0,
                },
            ),
        )

        async def body(service):
            (status_a, payload_a), (status_b, payload_b) = await asyncio.gather(
                post_query(service.host, service.port, query_body(p3, p4)),
                post_query(service.host, service.port, query_body(p4, p3, time="14:00")),
            )
            assert status_a == 200 and status_b == 200
            assert payload_a["rung"] == RUNG_PARALLEL
            assert payload_b["rung"] == RUNG_PARALLEL
            assert_matches_oracle(payload_a, oracle)
            assert_matches_oracle(payload_b, oracle_afternoon)
            # The supervised pool really did lose a worker and recover.
            report = engine.last_execution_report
            assert report is not None and report.mode == "pool"
            assert report.worker_crashes >= 1
            assert not report.clean

        run_service_test(service, body)


class TestForcedRungParity:
    def _trip(self, service: ITSPQService, rung: str) -> None:
        for _ in range(service.config.breaker_failure_threshold):
            service.ladder.record(rung, False)

    def test_each_rung_answers_bit_identically(self, example_itgraph, example_points, oracle):
        p3, p4 = example_points["p3"], example_points["p4"]
        engine = ITSPQEngine(example_itgraph, cache=CacheConfig(mode="eager"))
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(workers=2, batch_window_ms=0.0, breaker_backoff_base=3600.0),
        )

        async def body(service):
            assert service.ladder.rungs == [
                RUNG_PARALLEL,
                RUNG_BATCH,
                RUNG_SEQUENTIAL,
                RUNG_CACHE_REPLAY,
            ]
            for forced in service.ladder.rungs:
                status, payload = await post_query(
                    service.host, service.port, query_body(p3, p4)
                )
                assert status == 200
                assert payload["rung"] == forced, (forced, payload)
                assert_matches_oracle(payload, oracle)
                self._trip(service, forced)  # push the next round one rung down

        run_service_test(service, body)

    def test_cache_replay_miss_is_shed_not_searched(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]
        engine = ITSPQEngine(example_itgraph, cache=CacheConfig(mode="eager"))
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(batch_window_ms=0.0, breaker_backoff_base=3600.0),
        )

        async def body(service):
            # Cache the 9:00 tree, then degrade everything above replay.
            status, _ = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200
            self._trip(service, RUNG_BATCH)
            self._trip(service, RUNG_SEQUENTIAL)
            # The cached query still answers...
            status, payload = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200 and payload["rung"] == RUNG_CACHE_REPLAY
            # ...an uncached one is shed with a typed 429, never searched.
            status, payload = await post_query(
                service.host, service.port, query_body(p3, p4, time="16:45")
            )
            assert status == 429
            assert payload["type"] == "ServiceOverloadedError"
            assert "cache-replay" in payload["error"]

        run_service_test(service, body)


class TestCircuitBreaker:
    def test_flaky_rung_opens_descends_and_heals(self, example_itgraph, example_points, oracle):
        p3, p4 = example_points["p3"], example_points["p4"]
        clock = FakeClock()
        hook = FlakyRung(RUNG_BATCH, failures=2)
        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(
                batch_window_ms=0.0,
                breaker_failure_threshold=2,
                breaker_backoff_base=10.0,
                breaker_clock=clock,
                rung_fault_hook=hook,
            ),
        )

        async def body(service):
            # Two injected failures, one per request: each batch fails on
            # the batch rung, descends, and still answers sequentially; the
            # second failure reaches the threshold and opens the breaker.
            for _ in range(2):
                status, payload = await post_query(
                    service.host, service.port, query_body(p3, p4)
                )
                assert status == 200 and payload["rung"] == RUNG_SEQUENTIAL
                assert_matches_oracle(payload, oracle)
            batch_breaker = service.ladder.snapshot()["breakers"][RUNG_BATCH]
            assert batch_breaker["state"] == "open" and batch_breaker["trips"] == 1

            # While open, batches skip the broken rung without touching it.
            offered_before = hook.offered.get(RUNG_BATCH, 0)
            status, payload = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200 and payload["rung"] == RUNG_SEQUENTIAL
            assert hook.offered.get(RUNG_BATCH, 0) == offered_before

            # Past the backoff the half-open probe runs on the (now healed)
            # rung and closes the breaker again.
            clock.advance(11.0)
            status, payload = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200 and payload["rung"] == RUNG_BATCH
            assert_matches_oracle(payload, oracle)
            assert service.ladder.snapshot()["breakers"][RUNG_BATCH]["state"] == "closed"

        run_service_test(service, body)

    def test_probe_failure_reopens_with_doubled_backoff(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]
        clock = FakeClock()
        hook = FlakyRung(RUNG_BATCH, failures=3)  # enough to also fail the probe
        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(
                batch_window_ms=0.0,
                breaker_failure_threshold=2,
                breaker_backoff_base=10.0,
                breaker_clock=clock,
                rung_fault_hook=hook,
            ),
        )

        async def body(service):
            for _ in range(2):  # two failures, breaker opens, sequential answers
                status, _ = await post_query(service.host, service.port, query_body(p3, p4))
                assert status == 200
            clock.advance(11.0)
            status, payload = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200 and payload["rung"] == RUNG_SEQUENTIAL  # probe failed
            snapshot = service.ladder.snapshot()["breakers"][RUNG_BATCH]
            assert snapshot["state"] == "open" and snapshot["trips"] == 2
            assert snapshot["backoff_remaining_seconds"] == pytest.approx(20.0)

        run_service_test(service, body)


class TestQueueFlood:
    def test_flood_outcomes_are_200_bit_identical_or_typed_429(
        self, example_itgraph, example_points, oracle
    ):
        import time as _time

        p3, p4 = example_points["p3"], example_points["p4"]

        def slow_rung(rung, venue):
            _time.sleep(0.05)

        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(
                batch_window_ms=0.0,
                max_batch=1,
                max_pending=3,
                max_inflight_batches=1,
                rung_fault_hook=slow_rung,
            ),
        )
        bodies = [query_body(p3, p4) for _ in range(24)]

        async def body(service):
            outcomes = await flood_requests(service.host, service.port, bodies)
            statuses = [status for status, _ in outcomes]
            assert set(statuses) <= {200, 429}, statuses
            assert statuses.count(429) >= 1, statuses
            assert statuses.count(200) >= 1, statuses
            for status, payload in outcomes:
                if status == 200:
                    assert_matches_oracle(payload, oracle)
                else:
                    assert payload["type"] == "ServiceOverloadedError"

        run_service_test(service, body)


class TestSlowClient:
    def test_drip_feed_times_out_and_service_stays_healthy(
        self, example_itgraph, example_points, oracle
    ):
        p3, p4 = example_points["p3"], example_points["p4"]
        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(batch_window_ms=0.0, client_timeout_seconds=0.2),
        )

        async def body(service):
            stalled = asyncio.ensure_future(
                drip_feed_request(service.host, service.port, hold_seconds=5.0)
            )
            # A well-behaved client is not blocked by the stalled one.
            status, payload = await post_query(service.host, service.port, query_body(p3, p4))
            assert status == 200
            assert_matches_oracle(payload, oracle)
            drip_status, _ = await stalled
            assert drip_status == 408
            assert service.metrics.client_timeouts == 1
            status, _ = await get(service.host, service.port, "/readyz")
            assert status == 200

        run_service_test(service, body)
