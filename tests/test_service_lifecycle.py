"""Graceful lifecycle: drain-then-close semantics, idempotent shutdown, and
peaceful coexistence with the executors' ``atexit`` guard.

The drain contract: queries admitted before ``aclose`` are answered, not
dropped — the buffers are flushed, in-flight batches finish, and only then
does the socket close.  ``aclose`` is idempotent like the engine/executor
``close()`` it reuses.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.engine import ITSPQEngine
from repro.core.parallel import _close_live_executors
from repro.service import ITSPQService, ServiceConfig
from repro.service.degradation import RUNG_PARALLEL

from tests._service_http import assert_matches_oracle, post_query, query_body


class TestDrain:
    def test_queries_admitted_before_drain_are_answered(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]
        oracle = ITSPQEngine(example_itgraph).query(p3, p4, "9:00")

        def slow_rung(rung, venue):  # the batch is mid-flight when drain starts
            time.sleep(0.1)

        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(batch_window_ms=200.0, rung_fault_hook=slow_rung),
        )

        async def scenario():
            await service.start()
            inflight = [
                asyncio.ensure_future(
                    post_query(service.host, service.port, query_body(p3, p4))
                )
                for _ in range(6)
            ]
            await asyncio.sleep(0.05)  # enqueued, but the 200ms window has not fired
            await service.aclose()
            outcomes = await asyncio.gather(*inflight)
            for status, payload in outcomes:
                assert status == 200
                assert_matches_oracle(payload, oracle)
            assert service.metrics.answered == len(inflight)
            # The socket really is closed afterwards.
            with pytest.raises(ConnectionError):
                await post_query(service.host, service.port, query_body(p3, p4))

        asyncio.run(scenario())

    def test_queries_arriving_during_drain_get_503(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]
        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService({"example": engine}, ServiceConfig(batch_window_ms=1.0))

        async def scenario():
            await service.start()
            reader, writer = await asyncio.open_connection(service.host, service.port)
            try:
                service._draining = True  # drain begins; the connection is still open
                import json

                from tests._service_http import raw_request

                status, payload = await raw_request(
                    service.host,
                    service.port,
                    "POST",
                    "/query",
                    json.dumps(query_body(p3, p4)).encode(),
                    reader=reader,
                    writer=writer,
                )
                assert status == 503
                assert payload["type"] == "ServiceUnavailableError"
            finally:
                writer.close()
                service._draining = False
                await service.aclose()

        asyncio.run(scenario())


class TestIdempotence:
    def test_double_aclose_is_a_no_op(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService({"example": engine}, ServiceConfig(batch_window_ms=1.0))

        async def scenario():
            await service.start()
            status, _ = await post_query(
                service.host,
                service.port,
                query_body(example_points["p3"], example_points["p4"]),
            )
            assert status == 200
            await service.aclose()
            await service.aclose()  # second close: nothing to do, nothing raised
            engine.close()  # and the engine's own close stays idempotent too

        asyncio.run(scenario())

    def test_aclose_without_start(self, example_itgraph):
        engine = ITSPQEngine(example_itgraph)
        service = ITSPQService({"example": engine}, ServiceConfig())

        async def scenario():
            await service.aclose()  # never started: still clean

        asyncio.run(scenario())


class TestAtexitGuard:
    def test_guard_sweep_does_not_kill_a_live_service(self, example_itgraph, example_points):
        """The executors' ``atexit`` guard may fire at any time in an
        embedding process; a service with a parallel rung must survive the
        sweep — the pool restarts lazily on the next parallel batch."""
        p3, p4 = example_points["p3"], example_points["p4"]
        engine = ITSPQEngine(example_itgraph)
        oracle_morning = ITSPQEngine(example_itgraph).query(p3, p4, "9:00")
        oracle_afternoon = ITSPQEngine(example_itgraph).query(p4, p3, "14:00")
        service = ITSPQService(
            {"example": engine},
            ServiceConfig(workers=2, batch_window_ms=100.0),
        )

        async def both():
            return await asyncio.gather(
                post_query(service.host, service.port, query_body(p3, p4)),
                post_query(service.host, service.port, query_body(p4, p3, time="14:00")),
            )

        async def scenario():
            await service.start()
            for (status_a, payload_a), (status_b, payload_b) in (await both(),):
                assert status_a == 200 and payload_a["rung"] == RUNG_PARALLEL
                assert status_b == 200 and payload_b["rung"] == RUNG_PARALLEL
            # The guard sweeps every live pool out from under the service...
            await asyncio.to_thread(_close_live_executors)
            # ...and the very next parallel batch starts a fresh pool and
            # answers bit-identically.
            (status_a, payload_a), (status_b, payload_b) = await both()
            assert status_a == 200 and payload_a["rung"] == RUNG_PARALLEL
            assert status_b == 200 and payload_b["rung"] == RUNG_PARALLEL
            assert_matches_oracle(payload_a, oracle_morning)
            assert_matches_oracle(payload_b, oracle_afternoon)
            await service.aclose()

        asyncio.run(scenario())
