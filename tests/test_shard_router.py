"""The sharded serving topology: routing parity, failure isolation,
supervised respawn and cross-shard metrics aggregation.

Every router test spawns **real** ``python -m repro.service`` worker
subprocesses (the deployment entry point, serving venues rehydrated from
compiled-codec payload files — the shard hand-off) behind a real
:class:`~repro.service.shard.ShardRouter` on an ephemeral localhost port,
and compares answers against an in-process engine rehydrated from the same
payload: the parity oracle shares bytes, not just code, with the shards.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.engine import ITSPQEngine
from repro.service.metrics import aggregate_request_snapshots
from repro.service.shard import (
    SHARD_UP,
    ShardRouter,
    ShardRouterConfig,
    ShardSpec,
    plan_shards,
)
from repro.testing.faults import await_router_ready, shard_owning, sigkill_shard

from tests._service_http import (
    assert_matches_oracle,
    get,
    post_query,
    query_body,
    raw_request,
)

#: (source, target, time, method) cases; methods chosen so both TV-check
#: families (ITG/S and ITG/A) cross the router.
CASES = [
    ("p3", "p4", "9:00", "synchronous"),
    ("p4", "p3", "14:00", "synchronous"),
    ("p1", "p2", "10:30", "asynchronous"),
    ("p2", "p1", "18:00", "query-time"),
]


@pytest.fixture(scope="session")
def example_payload(example_itgraph) -> bytes:
    """The running example as a compiled-codec payload (the shard blob)."""
    from repro.io.compiled_codec import compiled_graph_to_bytes

    return compiled_graph_to_bytes(example_itgraph.compiled())


@pytest.fixture(scope="session")
def payload_files(example_payload, tmp_path_factory):
    """Two payload files serving as venues ``a`` and ``b`` (one per shard)."""
    root = tmp_path_factory.mktemp("shard-payloads")
    paths = {}
    for venue in ("a", "b"):
        path = root / f"{venue}.bin"
        path.write_bytes(example_payload)
        paths[venue] = path
    return paths


@pytest.fixture(scope="session")
def oracle_engine(example_payload):
    """The parity oracle: an engine rehydrated from the same payload bytes
    the shard workers serve."""
    engine = ITSPQEngine.from_compiled_payload(example_payload)
    yield engine
    engine.close()


def two_shard_router(payload_files, **config_kwargs) -> ShardRouter:
    specs = [
        ShardSpec("shard-0", (f"a={payload_files['a']}",)),
        ShardSpec("shard-1", (f"b={payload_files['b']}",)),
    ]
    config_kwargs.setdefault("worker_args", ("--cache", "eager", "--window-ms", "1"))
    config_kwargs.setdefault("startup_timeout_seconds", 60.0)
    return ShardRouter(specs, ShardRouterConfig(**config_kwargs))


def run_router_test(router: ShardRouter, test_coro_factory) -> None:
    """Start ``router`` (and its worker subprocesses), run the test body,
    always drain-and-close."""

    async def scenario():
        await router.start()
        try:
            await test_coro_factory(router)
        finally:
            await router.aclose()

    asyncio.run(scenario())


class TestPlanAndValidation:
    def test_round_robin_plan_is_deterministic(self):
        plan = plan_shards(["a=x", "b=y", "c=z"], 2)
        assert [spec.name for spec in plan] == ["shard-0", "shard-1"]
        assert plan[0].venue_specs == ("a=x", "c=z")
        assert plan[1].venue_specs == ("b=y",)
        assert plan[0].venues == ("a", "c")

    @pytest.mark.parametrize(
        "venue_specs, shard_count, message",
        [
            (["a=x"], 0, "shard_count"),
            ([], 1, "at least one venue"),
            (["a=x"], 2, "more shards"),
            (["a=x", "a=y"], 1, "duplicate venue"),
        ],
    )
    def test_plan_misconfigurations_are_typed(self, venue_specs, shard_count, message):
        with pytest.raises(ValueError, match=message):
            plan_shards(venue_specs, shard_count)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="name"):
            ShardSpec("", ("a=x",))
        with pytest.raises(ValueError, match="owns no venues"):
            ShardSpec("shard-0", ())

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"pool_size": 0}, "pool_size"),
            ({"max_inflight_per_shard": 0}, "max_inflight_per_shard"),
            ({"client_timeout_seconds": 0}, "client_timeout_seconds"),
            ({"shard_request_timeout_seconds": 0}, "shard_request_timeout_seconds"),
            ({"startup_timeout_seconds": 0}, "startup_timeout_seconds"),
            ({"respawn_backoff_base": -1}, "respawn_backoff_base"),
            ({"respawn_backoff_cap": -1}, "respawn_backoff_cap"),
            ({"max_respawns": 0}, "max_respawns"),
            ({"drain_timeout_seconds": -1}, "drain_timeout_seconds"),
            ({"max_body_bytes": 0}, "max_body_bytes"),
        ],
    )
    def test_config_validation_names_the_field(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            ShardRouterConfig(**kwargs)

    def test_router_rejects_duplicate_venues_and_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter([])
        spec = ShardSpec("shard-0", ("a=x",))
        with pytest.raises(ValueError, match="duplicate shard names"):
            ShardRouter([spec, ShardSpec("shard-0", ("b=y",))])
        with pytest.raises(ValueError, match="assigned to both"):
            ShardRouter([spec, ShardSpec("shard-1", ("a=z",))])


class TestRoutingParity:
    def test_both_venues_bit_identical_to_the_payload_oracle(
        self, payload_files, oracle_engine, example_points
    ):
        oracles = {
            (venue, source, target, when, method): oracle_engine.query(
                example_points[source], example_points[target], when, method=method
            )
            for venue in ("a", "b")
            for source, target, when, method in CASES
        }

        async def body(router):
            assert router.venues == ("a", "b")
            assert router.shard_of("a") == "shard-0"
            for (venue, source, target, when, method), oracle in oracles.items():
                status, payload = await post_query(
                    router.host,
                    router.port,
                    query_body(
                        example_points[source],
                        example_points[target],
                        when,
                        method=method,
                        venue=venue,
                    ),
                )
                assert status == 200, payload
                assert payload["venue"] == venue
                assert_matches_oracle(payload, oracle)

            # The routing surface's typed errors.
            status, payload = await post_query(
                router.host,
                router.port,
                query_body(example_points["p3"], example_points["p4"], venue="atlantis"),
            )
            assert status == 400 and payload["type"] == "ValueError"
            status, payload = await post_query(
                router.host,
                router.port,
                query_body(example_points["p3"], example_points["p4"]),  # no venue, two exist
            )
            assert status == 400 and "pick a venue" in payload["error"]
            status, _ = await get(router.host, router.port, "/nope")
            assert status == 404
            status, _ = await raw_request(router.host, router.port, "DELETE", "/query")
            assert status == 405

        run_router_test(two_shard_router(payload_files), body)


class TestMetricsAggregation:
    def test_router_metrics_are_consistent_with_shard_scrapes(
        self, payload_files, example_points
    ):
        queries = 6

        async def body(router):
            p3, p4 = example_points["p3"], example_points["p4"]
            for index in range(queries):
                venue = "a" if index % 2 == 0 else "b"
                status, _ = await post_query(
                    router.host, router.port, query_body(p3, p4, venue=venue)
                )
                assert status == 200

            status, metrics = await get(router.host, router.port, "/metrics")
            assert status == 200
            router_section = metrics["router"]
            assert router_section["received"] == queries
            assert router_section["routed"] == queries
            assert sum(router_section["routed_by_shard"].values()) == queries
            assert router_section["responses_by_status"] == {"200": queries}
            assert router_section["latency_samples"] == queries
            assert router_section["latency_p50_seconds"] > 0

            # Aggregate == recomputing from the per-shard scrapes in the
            # same document; every routed request is accounted for.
            shard_requests = [
                entry["metrics"]["requests"]
                for entry in metrics["shards"].values()
                if entry["metrics"] is not None
            ]
            assert len(shard_requests) == 2
            assert metrics["aggregate"] == aggregate_request_snapshots(shard_requests)
            assert metrics["aggregate"]["answered"] == queries
            assert metrics["aggregate"]["shards_reporting"] == 2
            per_shard_answered = {
                name: entry["metrics"]["requests"]["answered"]
                for name, entry in metrics["shards"].items()
            }
            assert per_shard_answered == {"shard-0": 3, "shard-1": 3}

            status, ready = await get(router.host, router.port, "/readyz")
            assert status == 200 and ready["status"] == "ready"
            assert ready["venues"] == ["a", "b"]
            assert all(entry["state"] == SHARD_UP for entry in ready["shards"].values())

        run_router_test(two_shard_router(payload_files), body)

    def test_router_metrics_fields_are_documented(self, payload_files, example_points):
        from pathlib import Path

        from tests._service_http import assert_fields_documented

        doc_text = (Path(__file__).resolve().parents[1] / "docs" / "OPERATIONS.md").read_text()

        async def body(router):
            status, _ = await post_query(
                router.host,
                router.port,
                query_body(example_points["p3"], example_points["p4"], venue="a"),
            )
            assert status == 200
            status, metrics = await get(router.host, router.port, "/metrics")
            assert status == 200
            assert_fields_documented(metrics, doc_text, "router /metrics")
            status, ready = await get(router.host, router.port, "/readyz")
            assert status == 200
            assert_fields_documented(ready, doc_text, "router /readyz")

        run_router_test(two_shard_router(payload_files), body)


class TestFailureIsolationAndRespawn:
    def test_sigkill_isolates_the_dead_shard_and_respawn_recovers(
        self, payload_files, oracle_engine, example_points
    ):
        p3, p4 = example_points["p3"], example_points["p4"]
        oracle = oracle_engine.query(p3, p4, "9:00")

        async def body(router):
            for venue in ("a", "b"):
                status, payload = await post_query(
                    router.host, router.port, query_body(p3, p4, venue=venue)
                )
                assert status == 200
                assert_matches_oracle(payload, oracle)

            _status, ready = await get(router.host, router.port, "/readyz")
            shard_name, entry = shard_owning(ready["shards"], "a")
            assert shard_name == "shard-0"
            sigkill_shard(entry)

            # The dead shard's venue sheds typed 503s while it is down (a
            # request racing the supervisor's death notice may see a typed
            # 502 instead); the healthy shard keeps answering
            # bit-identically throughout.
            isolated = 0
            for _attempt in range(50):
                status, payload = await post_query(
                    router.host, router.port, query_body(p3, p4, venue="a")
                )
                if status == 503:
                    assert payload["type"] == "ServiceUnavailableError"
                    assert payload["shard"] == "shard-0"
                    isolated += 1
                elif status == 502:
                    assert payload["type"] == "ShardConnectionError"
                    assert payload["shard"] == "shard-0"
                else:
                    assert status == 200  # the respawn already landed
                    assert_matches_oracle(payload, oracle)
                status, payload = await post_query(
                    router.host, router.port, query_body(p3, p4, venue="b")
                )
                assert status == 200, payload
                assert_matches_oracle(payload, oracle)
                if isolated and status == 200:
                    break
                await asyncio.sleep(0.02)
            assert isolated >= 1, "the dead shard's venue never shed a 503"

            # Supervised respawn: readiness returns, the venue answers
            # bit-identically again, and the death is on the books.
            await await_router_ready(router.host, router.port, timeout=30.0)
            status, payload = await post_query(
                router.host, router.port, query_body(p3, p4, venue="a")
            )
            assert status == 200, payload
            assert_matches_oracle(payload, oracle)
            snapshot = router.shard_snapshot("shard-0")
            assert snapshot["deaths"] == 1
            assert snapshot["respawns"] == 1
            assert snapshot["state"] == SHARD_UP
            assert router.shard_snapshot("shard-1")["deaths"] == 0
            assert router.metrics.shard_unavailable == isolated

        run_router_test(
            two_shard_router(payload_files, respawn_backoff_base=0.2, respawn_backoff_cap=2.0),
            body,
        )
