"""Tests for the synthetic mall floor and multi-floor venue generators."""


import pytest

from repro.indoor.entities import PartitionCategory
from repro.synthetic.floorplan import MallFloorConfig, generate_mall_floor
from repro.synthetic.multifloor import MultiFloorConfig, generate_mall_venue


@pytest.fixture(scope="module")
def small_floor():
    config = MallFloorConfig(
        side=400.0,
        corridors=2,
        corridor_cells=4,
        shop_depth=30.0,
        shops_per_row=8,
        double_door_fraction=0.5,
        private_shop_fraction=0.1,
    )
    return generate_mall_floor(config, seed=3)


class TestSingleFloor:
    def test_floor_validates(self, small_floor):
        space, _ = small_floor
        space.validate()

    def test_layout_inventory_matches_space(self, small_floor):
        space, layout = small_floor
        for partition_id in layout.hallway_cells + layout.shops + layout.anchors:
            assert space.has_partition(partition_id)
        for door_id in layout.doors:
            assert space.has_door(door_id)
        assert set(layout.private_partitions) <= set(space.partition_ids())

    def test_hallways_and_shops_are_categorised(self, small_floor):
        space, layout = small_floor
        for cell in layout.hallway_cells:
            assert space.partition(cell).category is PartitionCategory.HALLWAY
        for anchor in layout.anchors:
            assert space.partition(anchor).category is PartitionCategory.ANCHOR_STORE

    def test_private_partitions_are_private(self, small_floor):
        space, layout = small_floor
        for partition_id in layout.private_partitions:
            assert space.partition(partition_id).is_private

    def test_every_shop_reaches_a_hallway(self, small_floor):
        space, layout = small_floor
        hallways = set(layout.hallway_cells)
        topology = space.topology
        for shop in layout.shops + layout.anchors:
            neighbours = set()
            for door_id in topology.doors_of(shop):
                neighbours |= set(topology.partitions_of(door_id))
            assert neighbours & hallways, f"{shop} is not connected to any hallway"

    def test_corridor_cells_form_a_chain(self, small_floor):
        space, layout = small_floor
        topology = space.topology
        # Every corridor cell connects to at least one other hallway cell.
        hallways = set(layout.hallway_cells)
        for cell in layout.hallway_cells:
            neighbours = set()
            for door_id in topology.doors_of(cell):
                neighbours |= set(topology.partitions_of(door_id)) - {cell}
            assert neighbours, f"hallway cell {cell} is isolated"

    def test_generation_is_deterministic(self):
        config = MallFloorConfig(side=300, corridors=2, corridor_cells=3, shops_per_row=6)
        space_a, layout_a = generate_mall_floor(config, seed=42)
        space_b, layout_b = generate_mall_floor(config, seed=42)
        assert space_a.partition_ids() == space_b.partition_ids()
        assert space_a.door_ids() == space_b.door_ids()
        assert layout_a.private_partitions == layout_b.private_partitions

    def test_different_seeds_differ(self):
        config = MallFloorConfig(side=400, corridors=2, corridor_cells=3, shops_per_row=12,
                                 double_door_fraction=0.5, private_shop_fraction=0.2)
        space_a, _ = generate_mall_floor(config, seed=1)
        space_b, _ = generate_mall_floor(config, seed=2)
        positions_a = sorted((d.position.x, d.position.y) for d in space_a.iter_doors())
        positions_b = sorted((d.position.x, d.position.y) for d in space_b.iter_doors())
        assert positions_a != positions_b


class TestPaperScaleFloor:
    def test_default_floor_matches_paper_scale(self):
        space, layout = generate_mall_floor(seed=7)
        partitions = len(space)
        doors = space.count_doors()
        # The paper's decomposed floor has 141 partitions and 224 doors; the
        # reconstruction lands within ~15% of both.
        assert 120 <= partitions <= 165
        assert 190 <= doors <= 260
        assert space.partition_ids()  # floor builds and validates
        space.validate()


class TestMultiFloor:
    def test_small_venue_structure(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        assert tiny_mall_venue.floors == 2
        assert len(tiny_mall_venue.staircases) == 2
        assert set(space.floors()) == {0, 1}
        space.validate()

    def test_staircase_connects_adjacent_floors(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        for staircase_id in tiny_mall_venue.staircases:
            staircase = space.partition(staircase_id)
            assert staircase.is_staircase
            assert staircase.spans_floors == (0, 1)
            doors = space.topology.doors_of(staircase_id)
            assert len(doors) == 2
            floors = {space.door(door_id).floor for door_id in doors}
            assert floors == {0, 1}

    def test_stairway_length_is_registered(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        staircase_id = tiny_mall_venue.staircases[0]
        doors = sorted(space.topology.doors_of(staircase_id))
        staircase = space.partition(staircase_id)
        assert staircase.override_distance(doors[0], doors[1]) == pytest.approx(20.0)

    def test_all_shops_and_doors_listed(self, tiny_mall_venue):
        shops = tiny_mall_venue.all_shops()
        doors = tiny_mall_venue.all_doors()
        assert shops and doors
        assert len(set(shops)) == len(shops)
        assert len(set(doors)) == len(doors)

    def test_paper_default_counts(self):
        venue = generate_mall_venue(MultiFloorConfig.paper_default(), seed=7)
        stats = venue.space.statistics()
        # Paper default: 705 partitions and 1120 doors over five floors; the
        # generator reproduces the same order of magnitude.
        assert 600 <= stats["partitions"] <= 800
        assert 900 <= stats["doors"] <= 1300
        assert stats["floors"] == 5
        assert len(venue.staircases) == 4 * 4
