"""Tests for the δs2t-controlled query workload generator."""

import pytest

from repro.synthetic.queries import (
    QueryWorkloadConfig,
    door_distances_from_point,
    generate_query_instances,
)


class TestDoorDistances:
    def test_distances_from_example_point(self, example_itgraph, example_points):
        distances = door_distances_from_point(example_itgraph, example_points["p3"])
        # p3 lies in v14 whose doors are d15, d18 and d19.
        assert distances["d15"] == pytest.approx(1.0)
        assert distances["d18"] == pytest.approx((1.5 ** 2 + 5 ** 2) ** 0.5)
        # Distances are monotone under relaxation: every value positive & finite.
        assert all(value > 0 for value in distances.values())

    def test_private_partitions_block_propagation(self, example_itgraph, example_points):
        # d16 is only reachable from p3 through the private partition v15,
        # so it must not appear unless private traversal is allowed.
        blocked = door_distances_from_point(example_itgraph, example_points["p3"])
        allowed = door_distances_from_point(
            example_itgraph, example_points["p3"], allow_private=True
        )
        assert "d16" not in blocked or blocked["d16"] > allowed["d16"]
        assert allowed["d16"] < blocked.get("d16", float("inf"))

    def test_triangle_inequality_with_direct_doors(self, example_itgraph, example_points):
        distances = door_distances_from_point(example_itgraph, example_points["p1"])
        # d1 is the only door of p1's partition; every other distance goes through it.
        assert all(distances["d1"] <= value + 1e-9 for value in distances.values())


class TestGenerateQueryInstances:
    def test_generates_requested_number_of_pairs(self, tiny_mall_itgraph):
        config = QueryWorkloadConfig(s2t_distance=150, pairs=4, seed=1)
        instances = generate_query_instances(tiny_mall_itgraph, config)
        assert len(instances) == 4

    def test_endpoints_are_inside_the_space(self, tiny_mall_itgraph):
        config = QueryWorkloadConfig(s2t_distance=150, pairs=3, seed=2)
        for generated in generate_query_instances(tiny_mall_itgraph, config):
            source_partition = tiny_mall_itgraph.covering_partition(generated.query.source)
            target_partition = tiny_mall_itgraph.covering_partition(generated.query.target)
            assert not source_partition.is_private
            assert not target_partition.is_private

    def test_achieved_distance_tracks_target(self, tiny_mall_itgraph):
        for target in (100.0, 200.0, 300.0):
            config = QueryWorkloadConfig(s2t_distance=target, pairs=3, tolerance=0.5, seed=3)
            instances = generate_query_instances(tiny_mall_itgraph, config)
            for generated in instances:
                assert generated.achieved_distance == pytest.approx(target, rel=0.6)

    def test_longer_settings_produce_longer_distances(self, tiny_mall_itgraph):
        short = generate_query_instances(
            tiny_mall_itgraph, QueryWorkloadConfig(s2t_distance=80, pairs=4, seed=4)
        )
        long = generate_query_instances(
            tiny_mall_itgraph, QueryWorkloadConfig(s2t_distance=350, pairs=4, seed=4)
        )
        mean_short = sum(g.achieved_distance for g in short) / len(short)
        mean_long = sum(g.achieved_distance for g in long) / len(long)
        assert mean_long > mean_short

    def test_query_time_and_label_are_applied(self, tiny_mall_itgraph):
        config = QueryWorkloadConfig(s2t_distance=150, pairs=2, query_time="8:00", seed=5)
        for generated in generate_query_instances(tiny_mall_itgraph, config):
            assert str(generated.query.query_time) == "8:00"
            assert "s2t=150" in generated.query.label

    def test_workload_is_deterministic(self, tiny_mall_itgraph):
        config = QueryWorkloadConfig(s2t_distance=150, pairs=3, seed=6)
        first = generate_query_instances(tiny_mall_itgraph, config)
        second = generate_query_instances(tiny_mall_itgraph, config)
        assert [g.query.source for g in first] == [g.query.source for g in second]
        assert [g.query.target for g in first] == [g.query.target for g in second]

    def test_generated_queries_are_answerable_mid_day(self, tiny_mall_itgraph):
        from repro.core.engine import ITSPQEngine

        engine = ITSPQEngine(tiny_mall_itgraph)
        config = QueryWorkloadConfig(s2t_distance=150, pairs=3, query_time="12:00", seed=7)
        results = [
            engine.run(generated.query)
            for generated in generate_query_instances(tiny_mall_itgraph, config)
        ]
        assert any(result.found for result in results)
