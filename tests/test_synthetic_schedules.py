"""Tests for the opening-hours model and schedule generation."""


import pytest

from repro.indoor.entities import PartitionCategory
from repro.synthetic.schedules import MallHoursModel, ScheduleConfig, generate_schedule
from repro.temporal.timeofday import TimeOfDay


class TestMallHoursModel:
    def test_opening_hours_are_ordered_and_quantised(self):
        model = MallHoursModel(seed=1)
        for category in (
            PartitionCategory.SHOP,
            PartitionCategory.ANCHOR_STORE,
            PartitionCategory.FOOD_COURT,
            PartitionCategory.STORAGE,
        ):
            for _ in range(20):
                open_time, close_time = model.sample_opening_hours(category)
                assert open_time < close_time
                assert open_time.seconds % 1800 == 0
                assert close_time.seconds % 1800 == 0

    def test_shops_open_during_the_middle_of_the_day(self):
        model = MallHoursModel(seed=2)
        noon = TimeOfDay("12:00")
        samples = [model.sample_opening_hours(PartitionCategory.SHOP) for _ in range(50)]
        covering = sum(1 for open_t, close_t in samples if open_t <= noon < close_t)
        assert covering >= 45  # nearly every shop is open at noon

    @pytest.mark.parametrize("size", [4, 8, 12, 16])
    def test_checkpoint_pairs_have_requested_size(self, size):
        model = MallHoursModel(seed=3)
        checkpoints, pairs = model.sample_checkpoint_pairs(size)
        assert len(checkpoints) == size
        assert len(pairs) == size // 2
        for open_time, close_time in pairs:
            assert open_time < close_time
            assert open_time in checkpoints and close_time in checkpoints

    def test_checkpoints_wrapper(self):
        model = MallHoursModel(seed=4)
        assert len(model.sample_checkpoints(8)) == 8

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MallHoursModel().sample_checkpoint_pairs(0)


class TestGenerateSchedule:
    def test_schedule_covers_requested_fraction(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        config = ScheduleConfig(checkpoint_count=8, temporal_door_fraction=0.9, seed=5)
        schedule, checkpoints = generate_schedule(space, config)
        eligible = [
            door_id
            for door_id in space.door_ids()
            if not any(marker in door_id for marker in config.always_open_markers)
        ]
        fraction = len(schedule) / len(eligible)
        assert 0.75 <= fraction <= 1.0
        assert len(checkpoints) == 8

    def test_staircase_and_exit_doors_stay_always_open(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        schedule, _ = generate_schedule(space, ScheduleConfig(seed=5))
        for door_id in space.door_ids():
            if "stair" in door_id or "exit" in door_id:
                assert door_id not in schedule
                assert schedule.is_open(door_id, "3:00")

    def test_atis_use_checkpoint_instants_only(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        schedule, checkpoints = generate_schedule(space, ScheduleConfig(checkpoint_count=8, seed=6))
        checkpoint_seconds = {t.seconds for t in checkpoints}
        for door_id, atis in schedule.items():
            for interval in atis:
                assert interval.start.seconds in checkpoint_seconds
                assert interval.end.seconds in checkpoint_seconds

    def test_at_most_three_atis_per_door(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        schedule, _ = generate_schedule(
            space, ScheduleConfig(checkpoint_count=16, max_atis_per_door=3, seed=7)
        )
        # ATIs may merge when they overlap, so the bound is an upper bound.
        assert all(len(atis) <= 3 for _, atis in schedule.items())

    def test_schedule_is_deterministic(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        first, _ = generate_schedule(space, ScheduleConfig(seed=9))
        second, _ = generate_schedule(space, ScheduleConfig(seed=9))
        assert first.scheduled_doors() == second.scheduled_doors()
        for door_id in first.scheduled_doors():
            assert first[door_id] == second[door_id]

    def test_most_doors_open_at_noon_fewer_late_at_night(self, tiny_mall_venue):
        # The property the paper relies on for Figures 4, 6 and 7.
        space = tiny_mall_venue.space
        schedule, _ = generate_schedule(space, ScheduleConfig(checkpoint_count=8, seed=10))
        universe = list(schedule.scheduled_doors())
        open_noon = len(schedule.doors_open_at("12:00", universe))
        open_night = len(schedule.doors_open_at("23:45", universe))
        open_early = len(schedule.doors_open_at("4:00", universe))
        assert open_noon > open_night
        assert open_noon > open_early
        assert open_noon >= 0.9 * len(universe)

    def test_explicit_door_universe(self, tiny_mall_venue):
        space = tiny_mall_venue.space
        subset = space.door_ids()[:5]
        schedule, _ = generate_schedule(
            space, ScheduleConfig(temporal_door_fraction=1.0, seed=11), doors=subset
        )
        assert schedule.scheduled_doors() <= set(subset)
