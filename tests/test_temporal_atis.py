"""Tests for Active Time Interval sets."""

import pytest

from repro.temporal.atis import ATISet
from repro.temporal.interval import TimeInterval
from repro.temporal.timeofday import TimeOfDay


@pytest.fixture()
def d9_atis():
    """Door d9 of Table I: open [0:00, 6:00) and [6:30, 23:00)."""
    return ATISet.from_pairs([("0:00", "6:00"), ("6:30", "23:00")])


class TestConstruction:
    def test_from_pairs_keeps_disjoint_intervals(self, d9_atis):
        assert len(d9_atis) == 2

    def test_intervals_are_sorted(self):
        atis = ATISet.from_pairs([("18:00", "23:00"), ("5:00", "17:00")])
        assert [str(i.start) for i in atis] == ["5:00", "18:00"]

    def test_overlapping_intervals_are_merged(self):
        atis = ATISet.from_pairs([("8:00", "12:00"), ("11:00", "16:00")])
        assert len(atis) == 1
        assert atis.intervals[0] == TimeInterval("8:00", "16:00")

    def test_abutting_intervals_are_merged(self):
        atis = ATISet.from_pairs([("8:00", "12:00"), ("12:00", "16:00")])
        assert len(atis) == 1

    def test_always_and_never_open(self):
        assert ATISet.always_open().contains("0:00")
        assert ATISet.always_open().contains("23:59:59")
        assert not ATISet.never_open().contains("12:00")
        assert not ATISet.never_open()

    def test_equality_and_hash(self):
        a = ATISet.from_pairs([("8:00", "16:00")])
        b = ATISet.from_pairs([("8:00", "16:00")])
        assert a == b and hash(a) == hash(b)


class TestMembership:
    def test_membership_half_open(self, d9_atis):
        assert d9_atis.contains("0:00")
        assert d9_atis.contains("5:59:59")
        assert not d9_atis.contains("6:00")
        assert not d9_atis.contains("6:15")
        assert d9_atis.contains("6:30")
        assert not d9_atis.contains("23:00")
        assert "12:00" in d9_atis

    def test_interval_containing(self, d9_atis):
        assert d9_atis.interval_containing("3:00") == TimeInterval("0:00", "6:00")
        assert d9_atis.interval_containing("6:10") is None

    def test_membership_after_end_of_day(self):
        atis = ATISet.from_pairs([("8:00", "16:00")])
        # An arrival time past midnight (no wrap-around) is never inside an ATI.
        assert not atis.contains(TimeOfDay(90000))


class TestContainsSeconds:
    """The raw-float fast probe used by the engines' hot loops."""

    def test_matches_contains_at_boundaries(self, d9_atis):
        for seconds in (0.0, 6 * 3600 - 1e-9, 6 * 3600.0, 6.5 * 3600.0, 23 * 3600.0, 86400.0):
            assert d9_atis.contains_seconds(seconds) == d9_atis.contains(seconds)

    def test_open_boundary_is_inclusive_close_exclusive(self, d9_atis):
        assert d9_atis.contains_seconds(6.5 * 3600.0)  # opens at 6:30
        assert not d9_atis.contains_seconds(6 * 3600.0)  # closes at 6:00
        assert not d9_atis.contains_seconds(23 * 3600.0)  # closes at 23:00

    def test_wraparound_times_are_closed(self, d9_atis):
        # Arrival times past 24:00 never wrap: a door open in the small hours
        # is still closed for an arrival at 24:30 (= 0:30 the "next day").
        assert d9_atis.contains_seconds(1800.0)  # 0:30 itself is open
        assert not d9_atis.contains_seconds(86400.0 + 1800.0)

    def test_negative_and_empty(self):
        assert not ATISet.never_open().contains_seconds(0.0)
        assert not ATISet.from_pairs([("8:00", "16:00")]).contains_seconds(-1.0)

    def test_always_open_spans_whole_day_only(self):
        always = ATISet.always_open()
        assert always.contains_seconds(0.0)
        assert always.contains_seconds(86400.0 - 1e-6)
        assert not always.contains_seconds(86400.0)

    def test_agrees_with_contains_on_dense_grid(self, d9_atis):
        for step in range(0, 25 * 3600, 900):
            seconds = float(step)
            assert d9_atis.contains_seconds(seconds) == d9_atis.contains(seconds), seconds

    def test_boundary_seconds_parity_probe(self, d9_atis):
        """The flat boundary array used by the compiled index is equivalent."""
        import bisect

        bounds = d9_atis.boundary_seconds()
        assert bounds == sorted(bounds)
        for step in range(0, 25 * 3600, 450):
            seconds = float(step)
            lowered = bisect.bisect_right(bounds, seconds) & 1 == 1
            assert lowered == d9_atis.contains_seconds(seconds), seconds


class TestQueries:
    def test_next_opening(self, d9_atis):
        assert d9_atis.next_opening("6:10") == TimeOfDay("6:30")
        assert d9_atis.next_opening("12:00") == TimeOfDay("12:00")  # already open
        assert d9_atis.next_opening("23:30") is None

    def test_is_open_throughout(self, d9_atis):
        assert d9_atis.is_open_throughout(TimeInterval("7:00", "22:00"))
        assert not d9_atis.is_open_throughout(TimeInterval("5:00", "7:00"))

    def test_total_open_seconds(self):
        atis = ATISet.from_pairs([("8:00", "9:00"), ("10:00", "10:30")])
        assert atis.total_open_seconds() == 5400

    def test_boundary_times(self, d9_atis):
        boundaries = [str(t) for t in d9_atis.boundary_times()]
        assert boundaries == ["0:00", "6:00", "6:30", "23:00"]


class TestAlgebra:
    def test_union(self):
        a = ATISet.from_pairs([("8:00", "10:00")])
        b = ATISet.from_pairs([("9:00", "12:00")])
        union = a.union(b)
        assert len(union) == 1
        assert union.contains("11:00")

    def test_intersection(self):
        a = ATISet.from_pairs([("8:00", "12:00")])
        b = ATISet.from_pairs([("10:00", "16:00")])
        result = a.intersection(b)
        assert result == ATISet.from_pairs([("10:00", "12:00")])

    def test_intersection_disjoint_is_empty(self):
        a = ATISet.from_pairs([("8:00", "9:00")])
        b = ATISet.from_pairs([("10:00", "11:00")])
        assert not a.intersection(b)

    def test_complement_round_trip(self, d9_atis):
        complement = d9_atis.complement()
        assert complement.contains("6:15")
        assert complement.contains("23:30")
        assert not complement.contains("12:00")
        # Complement of the complement restores the original open periods.
        assert complement.complement() == d9_atis

    def test_complement_of_empty_is_whole_day(self):
        assert ATISet.never_open().complement() == ATISet.always_open()


class TestNextOpening:
    """Direct coverage of ``next_opening`` — the probe the waiting-tolerant
    cache-adjacent variants are built on, so its boundary semantics (half-open
    intervals, idempotence while open) are pinned down case by case here."""

    def test_already_open_returns_the_instant_itself(self, d9_atis):
        for instant in ("0:00", "3:17", "6:30", "12:00", "22:59:59"):
            assert d9_atis.next_opening(instant) == TimeOfDay(instant)

    def test_open_boundary_is_inclusive(self, d9_atis):
        # An interval start is an open instant: no waiting.
        assert d9_atis.next_opening("6:30") == TimeOfDay("6:30")

    def test_close_boundary_is_exclusive(self, d9_atis):
        # At a close boundary the door is shut; the answer is the next start.
        assert d9_atis.next_opening("6:00") == TimeOfDay("6:30")
        assert d9_atis.next_opening("23:00") is None

    def test_inside_a_gap_returns_the_next_start(self, d9_atis):
        assert d9_atis.next_opening("6:00:01") == TimeOfDay("6:30")
        assert d9_atis.next_opening("6:29:59") == TimeOfDay("6:30")

    def test_before_the_first_interval(self):
        atis = ATISet.from_pairs([("9:00", "17:00")])
        assert atis.next_opening("0:00") == TimeOfDay("9:00")
        assert atis.next_opening("8:59:59") == TimeOfDay("9:00")

    def test_after_the_last_interval_is_none(self, d9_atis):
        assert d9_atis.next_opening("23:00:01") is None
        assert d9_atis.next_opening("23:59:59") is None

    def test_never_open_is_always_none(self):
        atis = ATISet.never_open()
        for instant in ("0:00", "12:00", "23:59:59"):
            assert atis.next_opening(instant) is None

    def test_always_open_returns_every_instant(self):
        atis = ATISet.always_open()
        for instant in ("0:00", "12:00", "23:59:59"):
            assert atis.next_opening(instant) == TimeOfDay(instant)

    def test_accepts_time_of_day_instances(self, d9_atis):
        assert d9_atis.next_opening(TimeOfDay("6:10")) == TimeOfDay("6:30")

    def test_result_is_the_minimal_open_instant(self, d9_atis):
        # Property on a dense grid: the result is open, is >= the probe, and
        # no open instant exists strictly between the probe and the result.
        step = 150  # seconds
        boundaries = [t.seconds for t in d9_atis.boundary_times()]
        probes = sorted({float(s) for s in range(0, 24 * 3600, step)} | set(boundaries))
        for seconds in probes:
            probe = TimeOfDay.from_hours(seconds / 3600.0)
            result = d9_atis.next_opening(probe)
            if result is None:
                later = [b for b in boundaries if b >= seconds]
                assert not any(d9_atis.contains_seconds(b) for b in later)
                continue
            assert result >= probe
            assert d9_atis.contains(result)
            for boundary in boundaries:
                if seconds <= boundary < result.seconds:
                    assert not d9_atis.contains_seconds(boundary)
