"""Tests for checkpoint sets and the Find_Previous/Find_Next primitives."""

import pytest

from repro.temporal.checkpoints import CheckpointSet
from repro.temporal.timeofday import TimeOfDay


@pytest.fixture()
def checkpoints():
    return CheckpointSet(["8:00", "12:00", "16:00", "20:00"])


def test_deduplication_and_ordering():
    cps = CheckpointSet(["16:00", "8:00", "8:00", "12:00"])
    assert [str(t) for t in cps] == ["8:00", "12:00", "16:00"]
    assert len(cps) == 3


def test_membership(checkpoints):
    assert "12:00" in checkpoints
    assert "12:01" not in checkpoints


def test_find_previous(checkpoints):
    assert checkpoints.find_previous("13:00") == TimeOfDay("12:00")
    assert checkpoints.find_previous("12:00") == TimeOfDay("12:00")  # inclusive
    assert checkpoints.find_previous("7:00") is None


def test_find_next(checkpoints):
    assert checkpoints.find_next("13:00") == TimeOfDay("16:00")
    assert checkpoints.find_next("12:00") == TimeOfDay("16:00")  # strictly after
    assert checkpoints.find_next("21:00") is None


def test_interval_containing_inner(checkpoints):
    interval = checkpoints.interval_containing("13:00")
    assert str(interval) == "[12:00, 16:00)"


def test_interval_containing_before_first(checkpoints):
    interval = checkpoints.interval_containing("5:00")
    assert str(interval) == "[0:00, 8:00)"


def test_interval_containing_after_last(checkpoints):
    # After the last checkpoint the topology never changes again, so the
    # interval extends beyond the end of the day (arrival times can exceed
    # 24:00 because walking never wraps around midnight).
    interval = checkpoints.interval_containing("23:00")
    assert str(interval.start) == "20:00"
    assert interval.end.seconds >= 86400
    assert interval.contains("23:59")
    assert interval.contains(90000)  # an arrival past midnight stays covered


def test_interval_containing_at_last_checkpoint(checkpoints):
    interval = checkpoints.interval_containing("20:00")
    assert str(interval.start) == "20:00"
    assert interval.contains("20:00")
    assert interval.contains("23:59")


def test_merged_with(checkpoints):
    merged = checkpoints.merged_with(CheckpointSet(["9:00", "12:00"]))
    assert len(merged) == 5


def test_restricted_to():
    cps = CheckpointSet([f"{hour}:00" for hour in range(1, 17)])
    thinned = cps.restricted_to(4)
    assert len(thinned) == 4
    assert set(t.seconds for t in thinned) <= set(t.seconds for t in cps)
    assert len(cps.restricted_to(100)) == len(cps)
    assert len(cps.restricted_to(0)) == 0
    with pytest.raises(ValueError):
        cps.restricted_to(-1)


def test_empty_checkpoint_set():
    empty = CheckpointSet()
    assert empty.find_previous("12:00") is None
    assert empty.find_next("12:00") is None
    interval = empty.interval_containing("12:00")
    assert str(interval.start) == "0:00"
    assert interval.contains("0:00") and interval.contains("23:59")
