"""Tests for half-open time intervals."""

import pytest

from repro.exceptions import InvalidTimeError
from repro.temporal.interval import TimeInterval
from repro.temporal.timeofday import TimeOfDay


def test_interval_accepts_strings_and_instances():
    interval = TimeInterval("8:00", TimeOfDay("16:00"))
    assert interval.start == TimeOfDay("8:00")
    assert interval.end == TimeOfDay("16:00")


def test_interval_must_be_non_empty():
    with pytest.raises(InvalidTimeError):
        TimeInterval("8:00", "8:00")
    with pytest.raises(InvalidTimeError):
        TimeInterval("9:00", "8:00")


def test_duration():
    assert TimeInterval("8:00", "16:00").duration == 8 * 3600


def test_half_open_membership():
    interval = TimeInterval("8:00", "16:00")
    assert interval.contains("8:00")       # open instant included
    assert interval.contains("15:59:59")
    assert not interval.contains("16:00")  # close instant excluded
    assert not interval.contains("7:59:59")
    assert "12:00" in interval


def test_overlaps():
    a = TimeInterval("8:00", "12:00")
    assert a.overlaps(TimeInterval("11:00", "13:00"))
    assert not a.overlaps(TimeInterval("12:00", "13:00"))  # abutting does not overlap
    assert a.touches_or_overlaps(TimeInterval("12:00", "13:00"))


def test_intersection():
    a = TimeInterval("8:00", "12:00")
    b = TimeInterval("10:00", "14:00")
    assert a.intersection(b) == TimeInterval("10:00", "12:00")
    assert a.intersection(TimeInterval("13:00", "14:00")) is None


def test_union_if_touching():
    a = TimeInterval("8:00", "12:00")
    assert a.union_if_touching(TimeInterval("12:00", "13:00")) == TimeInterval("8:00", "13:00")
    assert a.union_if_touching(TimeInterval("14:00", "15:00")) is None


def test_shifted():
    assert TimeInterval("8:00", "9:00").shifted(1800) == TimeInterval("8:30", "9:30")


def test_string_rendering():
    assert str(TimeInterval("8:00", "16:00")) == "[8:00, 16:00)"


def test_equality_and_hash():
    assert TimeInterval("8:00", "9:00") == TimeInterval("8:00", "9:00")
    assert len({TimeInterval("8:00", "9:00"), TimeInterval("8:00", "9:00")}) == 1
