"""Tests for door schedules."""

import pytest

from repro.datasets.example_floorplan import TABLE_I_ATIS
from repro.exceptions import UnknownEntityError
from repro.temporal.atis import ATISet
from repro.temporal.schedule import DoorSchedule


@pytest.fixture()
def schedule():
    return DoorSchedule.from_pairs(TABLE_I_ATIS)


def test_table_i_has_21_doors(schedule):
    assert len(schedule) == 21
    assert schedule.scheduled_doors() == {f"d{i}" for i in range(1, 22)}


def test_atis_lookup(schedule):
    assert schedule.atis_for("d2") == ATISet.from_pairs([("8:00", "16:00")])
    assert schedule["d9"] == ATISet.from_pairs([("0:00", "6:00"), ("6:30", "23:00")])


def test_unscheduled_door_defaults_to_always_open(schedule):
    assert schedule.atis_for("unknown-door").contains("3:00")
    assert "unknown-door" not in schedule


def test_is_open(schedule):
    assert schedule.is_open("d2", "12:00")
    assert not schedule.is_open("d2", "7:00")
    assert not schedule.is_open("d2", "16:00")  # close time excluded


def test_doors_open_at(schedule):
    open_at_noon = schedule.doors_open_at("12:00")
    assert "d2" in open_at_noon and "d18" in open_at_noon
    # At 3:00 only the handful of early/always-open doors remain.
    open_at_3 = schedule.doors_open_at("3:00")
    assert open_at_3 == {"d9", "d14", "d17", "d18"}


def test_doors_closed_at(schedule):
    closed = schedule.doors_closed_at("23:45")
    assert "d7" in closed  # closes 23:30
    assert "d14" not in closed  # open all day
    # Restricting the universe only reports doors from it.
    assert schedule.doors_closed_at("23:45", universe=["d14", "d7"]) == {"d7"}


def test_checkpoints_are_all_boundaries(schedule):
    checkpoints = schedule.checkpoints()
    expected_instants = set()
    for intervals in TABLE_I_ATIS.values():
        for start, end in intervals:
            expected_instants.add(start)
            expected_instants.add(end)
    assert len(checkpoints) == len({str(t) for t in checkpoints})
    assert {str(t) for t in checkpoints} == {
        str(instant) for instant in map(_normalise, expected_instants)
    }


def _normalise(text):
    from repro.temporal.timeofday import TimeOfDay

    return TimeOfDay(text)


def test_validate_doors_accepts_known(schedule):
    schedule.validate_doors([f"d{i}" for i in range(1, 22)])


def test_validate_doors_rejects_unknown(schedule):
    with pytest.raises(UnknownEntityError):
        schedule.validate_doors([f"d{i}" for i in range(1, 10)])


def test_with_door_and_set_atis():
    schedule = DoorSchedule()
    updated = schedule.with_door("x", ATISet.from_pairs([("8:00", "9:00")]))
    assert "x" in updated and "x" not in schedule
    schedule.set_atis("y", ATISet.never_open())
    assert not schedule.is_open("y", "12:00")
