"""Tests for times of day."""

import math

import pytest

from repro.exceptions import InvalidTimeError
from repro.temporal.timeofday import TimeOfDay, as_time_of_day


class TestParsing:
    def test_parse_hours_minutes(self):
        assert TimeOfDay("8:30").seconds == 8 * 3600 + 30 * 60

    def test_parse_hours_minutes_seconds(self):
        assert TimeOfDay("8:30:15").seconds == 8 * 3600 + 30 * 60 + 15

    def test_parse_bare_hours(self):
        assert TimeOfDay("8").seconds == 8 * 3600

    def test_parse_midnight_and_end_of_day(self):
        assert TimeOfDay("0:00").seconds == 0
        assert TimeOfDay("24:00").seconds == 86400

    def test_parse_number(self):
        assert TimeOfDay(3600).seconds == 3600
        assert TimeOfDay(3600.5).seconds == 3600.5

    def test_parse_existing_instance(self):
        original = TimeOfDay("9:15")
        assert TimeOfDay(original) == original

    @pytest.mark.parametrize("bad", ["", "ab:cd", "8:61", "8:00:99", "1:2:3:4", None, object()])
    def test_rejects_malformed_inputs(self, bad):
        with pytest.raises(InvalidTimeError):
            TimeOfDay(bad)

    def test_rejects_negative_and_non_finite(self):
        with pytest.raises(InvalidTimeError):
            TimeOfDay(-1)
        with pytest.raises(InvalidTimeError):
            TimeOfDay(float("nan"))


class TestAccessors:
    def test_components(self):
        t = TimeOfDay("13:45:30")
        assert (t.hour, t.minute) == (13, 45)
        assert math.isclose(t.second, 30.0)

    def test_from_hours(self):
        assert TimeOfDay.from_hours(8.5) == TimeOfDay("8:30")

    def test_within_day(self):
        assert TimeOfDay("23:59").within_day
        assert TimeOfDay.end_of_day().within_day
        assert not TimeOfDay(90000).within_day


class TestArithmetic:
    def test_add_seconds(self):
        assert TimeOfDay("8:00").add_seconds(90) == TimeOfDay("8:01:30")

    def test_plus_operator(self):
        assert TimeOfDay("8:00") + 3600 == TimeOfDay("9:00")
        assert 3600 + TimeOfDay("8:00") == TimeOfDay("9:00")

    def test_difference_of_times(self):
        assert TimeOfDay("9:00") - TimeOfDay("8:30") == 1800

    def test_minus_seconds(self):
        assert TimeOfDay("9:00") - 1800 == TimeOfDay("8:30")

    def test_additions_do_not_wrap(self):
        late = TimeOfDay("23:30") + 3600
        assert late.seconds == 23.5 * 3600 + 3600
        assert late.wrapped() == TimeOfDay("0:30")


class TestComparison:
    def test_ordering(self):
        assert TimeOfDay("8:00") < TimeOfDay("8:01") < TimeOfDay("23:00")
        assert TimeOfDay("8:00") <= TimeOfDay("8:00")

    def test_comparison_with_numbers(self):
        assert TimeOfDay("1:00") == 3600
        assert TimeOfDay("1:00") < 3700

    def test_hashable(self):
        assert len({TimeOfDay("8:00"), TimeOfDay("8:00"), TimeOfDay("9:00")}) == 2


class TestFormatting:
    def test_str_round_trip(self):
        for text in ["0:00", "8:05", "23:59", "24:00"]:
            assert str(TimeOfDay(text)) == text

    def test_str_with_seconds(self):
        assert str(TimeOfDay("7:03:09")) == "7:03:09"

    def test_float_conversion(self):
        assert float(TimeOfDay("1:00")) == 3600.0


def test_as_time_of_day_coercion():
    assert as_time_of_day("2:00") == TimeOfDay(7200)
    t = TimeOfDay("5:00")
    assert as_time_of_day(t) is t
